#include "sim/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>

#include "common/codec_mode.hpp"
#include "common/interrupt.hpp"
#include "fleet/fleet.hpp"
#include "net/service.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "ecc/registry.hpp"
#include "faultsim/shard.hpp"
#include "obs/trace.hpp"
#include "sim/chaos.hpp"
#include "sim/checkpoint.hpp"

namespace gpuecc::sim {

std::vector<ErrorPattern>
CampaignSpec::resolvedPatterns() const
{
    if (!patterns.empty())
        return patterns;
    const auto& all = allErrorPatterns();
    return {all.begin(), all.end()};
}

std::uint64_t
CampaignResult::totalTrials() const
{
    std::uint64_t total = 0;
    for (const CampaignCell& cell : cells)
        total += cell.counts.trials;
    return total;
}

bool
CampaignResult::hasScheme(const std::string& scheme_id) const
{
    for (const CampaignCell& cell : cells) {
        if (cell.scheme_id == scheme_id)
            return true;
    }
    return false;
}

double
CampaignResult::trialsPerSecond() const
{
    return seconds > 0.0 ? static_cast<double>(totalTrials()) / seconds
                         : 0.0;
}

const OutcomeCounts&
CampaignResult::counts(const std::string& scheme_id,
                       ErrorPattern pattern) const
{
    for (const CampaignCell& cell : cells) {
        if (cell.scheme_id == scheme_id && cell.pattern == pattern)
            return cell.counts;
    }
    fatal("CampaignResult: no cell for scheme " + scheme_id);
}

std::map<ErrorPattern, OutcomeCounts>
CampaignResult::perPattern(const std::string& scheme_id) const
{
    std::map<ErrorPattern, OutcomeCounts> out;
    for (const CampaignCell& cell : cells) {
        if (cell.scheme_id == scheme_id)
            out[cell.pattern] = cell.counts;
    }
    require(!out.empty(),
            "CampaignResult: unknown scheme " + scheme_id);
    return out;
}

CampaignRunner::CampaignRunner(CampaignSpec spec) : spec_(std::move(spec))
{
    require(!spec_.scheme_ids.empty(),
            "CampaignRunner: spec names no schemes");
    require(spec_.chunk > 0, "CampaignRunner: chunk must be positive");
    require(spec_.fleet_workers >= 0 && spec_.fleet_workers <= 4096,
            "CampaignRunner: fleet workers must be in [0, 4096]");
    require(spec_.fleet_unit_shards > 0,
            "CampaignRunner: fleet unit must hold at least one shard");
}

CampaignResult
CampaignRunner::run() const
{
    Result<CampaignResult> result = tryRun();
    if (!result.ok())
        fatal("campaign: " + result.status().toString());
    return std::move(result).value();
}

namespace {

/** One pool task: a shard of one (scheme, pattern) cell. */
struct Task
{
    std::size_t cell;
    Shard shard;
};

/**
 * Completion log shared by the workers and the checkpoint flusher.
 * partial[i] is written by exactly one task execution *before* index
 * i is appended here under the mutex, so any reader holding the
 * mutex sees fully written tallies (and the final merge runs after
 * the pool joins).
 */
struct Collector
{
    std::mutex mutex;
    /** Plan indices whose partial tallies are valid. */
    std::vector<std::uint64_t> completed;
    /** Tasks evaluated by this run (excludes restored ones). */
    std::uint64_t fresh_completed = 0;
    std::chrono::steady_clock::time_point last_flush;
    bool warned_checkpoint_failure = false;
};

/** Ids of the campaign.* metrics, registered once per process. */
struct CampaignMetricIds
{
    obs::MetricId shards_completed;
    obs::MetricId trials;
    obs::MetricId shard_retries;
    obs::MetricId checkpoint_flushes;
    obs::MetricId checkpoint_failures;
    obs::MetricId schemes_dropped;
    obs::MetricId shard_micros;
};

const CampaignMetricIds&
campaignMetricIds()
{
    // Registration happens here, on the first campaign's calling
    // thread, before any pool exists — the register-before-spawn
    // contract the lock-free metric hot path relies on.
    static const CampaignMetricIds ids = [] {
        obs::MetricsRegistry& m = obs::metrics();
        CampaignMetricIds out;
        out.shards_completed = m.counter("campaign.shards_completed");
        out.trials = m.counter("campaign.trials");
        out.shard_retries = m.counter("campaign.shard_retries");
        out.checkpoint_flushes =
            m.counter("campaign.checkpoint_flushes");
        out.checkpoint_failures =
            m.counter("campaign.checkpoint_failures");
        out.schemes_dropped = m.counter("campaign.schemes_dropped");
        out.shard_micros = m.histogram(
            "campaign.shard_micros",
            {100, 1000, 10000, 100000, 1000000, 10000000});
        return out;
    }();
    return ids;
}

/** Per-scheme clocks the workers bump; µs since evaluation start. */
struct SchemeClock
{
    std::atomic<std::uint64_t> busy_us{0};
    std::atomic<std::uint64_t> trials{0};
    std::atomic<std::uint64_t> shards{0};
    std::atomic<std::uint64_t> first_us{~std::uint64_t{0}};
    std::atomic<std::uint64_t> last_us{0};
    /** Unaccounted tasks; 0 means the scheme finished this run. */
    std::atomic<std::uint64_t> pending{0};
};

void
atomicMin(std::atomic<std::uint64_t>& slot, std::uint64_t value)
{
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (value < cur &&
           !slot.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
}

void
atomicMax(std::atomic<std::uint64_t>& slot, std::uint64_t value)
{
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (value > cur &&
           !slot.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
}

std::uint64_t
microsSince(std::chrono::steady_clock::time_point origin,
            std::chrono::steady_clock::time_point at)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            at - origin)
            .count());
}

} // namespace

Result<CampaignResult>
CampaignRunner::tryRun() const
{
    // Fleet mode forks worker processes and must do so before this
    // process spawns any threads — the fleet dispatcher owns that
    // ordering, so hand over before the pool (or progress reporter)
    // exists. A listen address selects the multi-host socket service
    // (with --fleet-workers as its local standby rung); plain
    // --fleet-workers selects the single-host pipe transport.
    if (!spec_.fleet_listen.empty())
        return net::runFleetService(spec_);
    if (spec_.fleet_workers > 0)
        return fleet::runFleetCampaign(spec_);

    const CampaignMetricIds& mid = campaignMetricIds();
    obs::MetricsRegistry& reg = obs::metrics();
    // Flush this thread first so the baseline holds everything older
    // runs recorded and since() isolates exactly this run's activity.
    reg.flushThisThread();
    const obs::MetricsSnapshot metrics_baseline = reg.snapshot();
    obs::TraceSpan campaign_span("campaign", "campaign");

    CampaignResult result;
    result.spec = spec_;
    result.spec.threads = ThreadPool::resolveThreadCount(spec_.threads);
    result.codec_backend = codecBackendName();

    const std::vector<ErrorPattern> patterns = spec_.resolvedPatterns();

    // Resolve schemes and golden entries once; decode() is const and
    // thread-safe, so one instance serves all workers. A scheme that
    // fails to resolve is skipped and recorded, not fatal.
    std::vector<std::string> ids;
    std::vector<std::shared_ptr<EntryScheme>> schemes;
    std::vector<GoldenEntry> goldens;
    for (const std::string& id : spec_.scheme_ids) {
        // Covers codec (table) construction and golden derivation.
        obs::TraceSpan span("codec:" + id, "codec");
        Result<std::shared_ptr<EntryScheme>> scheme = findScheme(id);
        if (!scheme.ok()) {
            warn("campaign: skipping scheme " + id + ": " +
                 scheme.status().toString());
            result.errors.push_back({id, scheme.status().toString()});
            continue;
        }
        schemes.push_back(scheme.value());
        goldens.push_back(makeGolden(*schemes.back(), spec_.seed));
        ids.push_back(id);
    }
    if (schemes.empty()) {
        return Status::notFound(
            "no scheme in the spec could be constructed");
    }
    for (const std::string& id : ids) {
        for (ErrorPattern p : patterns)
            result.cells.push_back({id, p, OutcomeCounts{}});
    }

    // Flatten the plan: every shard of every cell is one pool task.
    // The same pattern plan (and thus the same RNG streams and masks)
    // is shared by every scheme, which keeps scheme columns paired.
    // The chunk may shrink so short runs still feed every worker;
    // tallies are chunk-invariant, so the report is unaffected.
    const std::uint64_t effective_chunk = effectiveShardChunk(
        spec_.samples, spec_.chunk, result.spec.threads);
    std::vector<Task> tasks;
    {
        obs::TraceSpan span("plan", "campaign");
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            for (std::size_t p = 0; p < patterns.size(); ++p) {
                const std::size_t cell = s * patterns.size() + p;
                for (const Shard& shard : planShards(
                         patterns[p], spec_.samples, effective_chunk))
                    tasks.push_back({cell, shard});
            }
        }
    }
    result.shards = tasks.size();

    const bool checkpointing = !spec_.checkpoint_path.empty();
    std::string fingerprint;
    if (checkpointing) {
        // Fingerprint the *effective* chunk: it determines the task
        // indexing a checkpoint records, and unlike the requested
        // chunk it can differ between two invocations of the same
        // spec (different --threads), which must be detected rather
        // than silently mis-restored.
        fingerprint = campaignFingerprint(
            ids, patterns, spec_.samples, spec_.seed, effective_chunk,
            result.codec_backend, tasks.size());
        // From here on SIGINT/SIGTERM mean "finish in-flight shards,
        // flush, exit" rather than dying mid-write.
        installInterruptHandlers();
    }

    // Fresh tallies accumulate in per-worker cache-line-aligned
    // arenas (merged once after the pool joins); the per-task log is
    // only materialized when a checkpoint needs to serialize it.
    std::vector<OutcomeCounts> partial(
        checkpointing ? tasks.size() : 0);
    // done[i]: task i needs no evaluation (restored or fresh).
    // Distinct bytes, each written by at most one task execution.
    std::vector<char> done(tasks.size(), 0);
    Collector collector;

    if (checkpointing && spec_.resume) {
        obs::TraceSpan span("resume-load", "campaign");
        Result<CampaignCheckpoint> loaded =
            loadCheckpoint(spec_.checkpoint_path);
        if (loaded.status().code() == ErrorCode::notFound) {
            inform("campaign: no checkpoint at " +
                   spec_.checkpoint_path + "; starting fresh");
        } else if (!loaded.ok()) {
            return loaded.status();
        } else {
            const CampaignCheckpoint& ckpt = loaded.value();
            if (ckpt.fingerprint != fingerprint) {
                return Status::failedPrecondition(
                    "checkpoint " + spec_.checkpoint_path +
                    " was written by a different campaign\n  theirs: " +
                    ckpt.fingerprint + "\n  ours:   " + fingerprint);
            }
            for (const CheckpointEntry& entry : ckpt.done) {
                if (entry.task >= tasks.size()) {
                    return Status::dataLoss(
                        "checkpoint " + spec_.checkpoint_path +
                        ": task index " + std::to_string(entry.task) +
                        " is outside the plan");
                }
                const Shard& shard = tasks[entry.task].shard;
                // Width validation: a sampled shard's trial count is
                // exactly its sample span, and exactness must match
                // the pattern class.
                const bool enumerable =
                    patternIsEnumerable(shard.pattern);
                if (entry.counts.exhaustive != enumerable ||
                    (!enumerable &&
                     entry.counts.trials != shard.end - shard.begin)) {
                    return Status::dataLoss(
                        "checkpoint " + spec_.checkpoint_path +
                        ": task " + std::to_string(entry.task) +
                        " tallies don't match its shard");
                }
                partial[entry.task] = entry.counts;
                done[entry.task] = 1;
                collector.completed.push_back(entry.task);
                // Restored tallies merge into their cell right away;
                // merge order against the fresh shards is irrelevant
                // (commutative, associative, same exactness per cell).
                result.cells[tasks[entry.task].cell].counts.merge(
                    entry.counts);
            }
            result.resumed_shards = ckpt.done.size();
            inform("campaign: resumed " +
                   std::to_string(result.resumed_shards) + " of " +
                   std::to_string(tasks.size()) + " shard tasks from " +
                   spec_.checkpoint_path);
        }
    }

    // Failure bookkeeping: a cell whose shard task fails twice marks
    // its whole scheme failed; remaining tasks of failed cells are
    // skipped. cell_errors is guarded by collector.mutex.
    std::unique_ptr<std::atomic<bool>[]> cell_failed(
        new std::atomic<bool>[result.cells.size()]);
    for (std::size_t i = 0; i < result.cells.size(); ++i)
        cell_failed[i].store(false, std::memory_order_relaxed);
    std::vector<std::pair<std::size_t, std::string>> cell_errors;

    // Per-scheme clocks and the progress denominator cover only the
    // work this run will actually evaluate (resumed tasks excluded).
    std::vector<SchemeClock> scheme_clocks(schemes.size());
    obs::ProgressTotals totals;
    totals.schemes = schemes.size();
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        if (done[i] != 0)
            continue;
        const std::size_t scheme = tasks[i].cell / patterns.size();
        scheme_clocks[scheme].pending.fetch_add(
            1, std::memory_order_relaxed);
        ++totals.shards;
    }
    obs::ProgressReporter progress(spec_.progress, totals);
    for (const SchemeClock& clock : scheme_clocks) {
        if (clock.pending.load(std::memory_order_relaxed) == 0)
            progress.schemeDone(); // fully restored from checkpoint
    }

    // The provenance block persisted with every checkpoint flush.
    std::vector<std::pair<std::string, std::string>> ckpt_manifest;
    if (checkpointing) {
        const obs::BuildInfo build = obs::buildInfo();
        ckpt_manifest = {
            {"threads", std::to_string(result.spec.threads)},
            {"codec_backend", result.codec_backend},
            {"build_type", build.build_type},
            {"compiler", build.compiler},
            {"platform", build.platform},
            {"chaos", obs::chaosEnvText()},
        };
    }

    // Serialize completed tallies; call with collector.mutex held.
    auto flushCheckpoint = [&]() -> Status {
        obs::TraceSpan span("checkpoint-flush", "checkpoint");
        CampaignCheckpoint ckpt;
        ckpt.fingerprint = fingerprint;
        ckpt.manifest = ckpt_manifest;
        std::vector<std::uint64_t> indices = collector.completed;
        std::sort(indices.begin(), indices.end());
        ckpt.done.reserve(indices.size());
        for (std::uint64_t i : indices)
            ckpt.done.push_back({i, partial[i]});
        span.arg("tasks", indices.size());
        Status s = saveCheckpoint(spec_.checkpoint_path, ckpt);
        reg.add(s.ok() ? mid.checkpoint_flushes
                       : mid.checkpoint_failures);
        return s;
    };

    const auto interval = std::chrono::duration<double>(
        std::max(0.0, spec_.checkpoint_interval_s));
    // Rebase the flush timer at evaluation start (i.e. after any
    // resume restore), so the first interval is a full one.
    collector.last_flush = std::chrono::steady_clock::now();

    const double cpu_start = obs::processCpuSeconds();
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t trace_eval_start_us = obs::traceNowUs();

    // Per-worker execution state: the batched kernel's SoA scratch
    // plus one tally accumulator per cell, all in one cache-line-
    // aligned WorkerArena slot so no two workers ever write the same
    // line on the hot path. Created with the pool (below); the body
    // reaches it through this pointer.
    struct WorkerState
    {
        ShardBatchArena batch;
        std::vector<OutcomeCounts> cells;
    };
    WorkerArena<WorkerState>* worker_states = nullptr;

    auto body = [&](std::uint64_t i) {
        if (done[i] != 0 || interruptRequested())
            return;
        const Task& t = tasks[i];
        const std::size_t scheme = t.cell / patterns.size();
        SchemeClock& clock = scheme_clocks[scheme];
        if (cell_failed[t.cell].load(std::memory_order_relaxed)) {
            if (clock.pending.fetch_sub(
                    1, std::memory_order_relaxed) == 1)
                progress.schemeDone();
            return;
        }

        obs::TraceSpan span(patternInfo(t.shard.pattern).label,
                            "shard");
        span.arg("scheme", ids[scheme])
            .arg("task", i)
            .arg("begin", t.shard.begin)
            .arg("end", t.shard.end);

        const auto shard_start = std::chrono::steady_clock::now();
        WorkerState& ws = worker_states->local();
        OutcomeCounts counts;
        try {
            chaosOnTaskAttempt(i);
            counts = evaluateShardBatched(*schemes[scheme],
                                          goldens[scheme], spec_.seed,
                                          t.shard, ws.batch);
        } catch (const std::exception& first) {
            // Transient faults (chaos, OOM churn) get one retry; a
            // second failure fails the scheme, not the campaign.
            reg.add(mid.shard_retries);
            warn("campaign: shard task " + std::to_string(i) +
                 " failed (" + first.what() + "); retrying once");
            try {
                chaosOnTaskAttempt(i);
                counts = evaluateShardBatched(*schemes[scheme],
                                              goldens[scheme],
                                              spec_.seed, t.shard,
                                              ws.batch);
            } catch (const std::exception& second) {
                cell_failed[t.cell].store(true,
                                          std::memory_order_relaxed);
                if (clock.pending.fetch_sub(
                        1, std::memory_order_relaxed) == 1)
                    progress.schemeDone();
                std::lock_guard<std::mutex> lock(collector.mutex);
                cell_errors.emplace_back(
                    t.cell, std::string("shard task failed twice: ") +
                                second.what());
                return;
            }
        }
        const auto shard_stop = std::chrono::steady_clock::now();
        // Tallies land in the worker's own aligned accumulator; the
        // per-task log is populated only for checkpoint serialization
        // (a cold, once-per-shard write).
        ws.cells[t.cell].merge(counts);
        if (checkpointing)
            partial[i] = counts;
        done[i] = 1;

        // Telemetry: thread-local metric shards and relaxed atomics
        // only — nothing here can reorder work or touch the tallies.
        const std::uint64_t shard_us =
            microsSince(shard_start, shard_stop);
        reg.add(mid.shards_completed);
        reg.add(mid.trials, counts.trials);
        reg.observe(mid.shard_micros, shard_us);
        clock.busy_us.fetch_add(shard_us, std::memory_order_relaxed);
        clock.trials.fetch_add(counts.trials,
                               std::memory_order_relaxed);
        clock.shards.fetch_add(1, std::memory_order_relaxed);
        atomicMin(clock.first_us, microsSince(start, shard_start));
        atomicMax(clock.last_us, microsSince(start, shard_stop));
        progress.shardDone(counts.trials);
        if (clock.pending.fetch_sub(1, std::memory_order_relaxed) ==
            1)
            progress.schemeDone();

        std::lock_guard<std::mutex> lock(collector.mutex);
        collector.completed.push_back(i);
        ++collector.fresh_completed;
        chaosOnTaskDone(collector.fresh_completed);
        if (checkpointing && !interruptRequested()) {
            const auto now = std::chrono::steady_clock::now();
            if (now - collector.last_flush >= interval) {
                Status s = flushCheckpoint();
                // Rebase from *after* the write completed, so slow
                // flushes can't compress the next interval and the
                // cadence stays uniform from flush to flush.
                collector.last_flush =
                    std::chrono::steady_clock::now();
                if (!s.ok() &&
                    !collector.warned_checkpoint_failure) {
                    // Degrade gracefully: the campaign still runs,
                    // it just can't persist progress right now.
                    warn("campaign: checkpoint write failed (" +
                         s.toString() + "); continuing without");
                    collector.warned_checkpoint_failure = true;
                }
            }
        }
    };

    ThreadPool::Stats pool_stats;
    {
        obs::TraceSpan span("evaluate", "campaign");
        ThreadPool pool(result.spec.threads, spec_.affinity);
        result.pool.affinity = pool.affinityApplied();
        WorkerArena<WorkerState> states(pool);
        for (int w = 0; w < states.size(); ++w)
            states.at(w).cells.resize(result.cells.size());
        worker_states = &states;
        pool.parallelFor(tasks.size(), body);
        pool_stats = pool.stats();
        // Merge the per-worker accumulators in worker order; the
        // outcome is order-independent (commutative merge), and
        // workers that ran nothing hold empty accumulators whose
        // default non-exhaustive flag must not dilute enumerable
        // cells, hence the trials guard.
        obs::TraceSpan merge_span("merge", "campaign");
        for (int w = 0; w < states.size(); ++w) {
            const std::vector<OutcomeCounts>& cells =
                states.at(w).cells;
            for (std::size_t c = 0; c < cells.size(); ++c) {
                if (cells[c].trials > 0)
                    result.cells[c].counts.merge(cells[c]);
            }
        }
        worker_states = nullptr;
    }
    const auto stop = std::chrono::steady_clock::now();
    result.seconds =
        std::chrono::duration<double>(stop - start).count();
    result.cpu_seconds = obs::processCpuSeconds() - cpu_start;
    result.pool.threads = result.spec.threads;
    result.pool.tasks_executed = pool_stats.tasks_executed;
    result.pool.steals = pool_stats.steals;
    result.pool.busy_seconds = pool_stats.busy_seconds;
    result.pool.wall_seconds = pool_stats.wall_seconds;
    result.pool.worker_busy_seconds =
        std::move(pool_stats.worker_busy_seconds);
    progress.stop();
    result.interrupted = interruptRequested();

    // Per-scheme timings, plus one synthetic aggregate span per
    // scheme on its own trace track (the workers interleave schemes,
    // so per-shard spans alone don't show scheme-level overlap).
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        const SchemeClock& clock = scheme_clocks[s];
        obs::SchemeTiming timing;
        timing.scheme_id = ids[s];
        timing.cpu_seconds =
            static_cast<double>(
                clock.busy_us.load(std::memory_order_relaxed)) *
            1e-6;
        timing.shards = clock.shards.load(std::memory_order_relaxed);
        timing.trials = clock.trials.load(std::memory_order_relaxed);
        const std::uint64_t first =
            clock.first_us.load(std::memory_order_relaxed);
        const std::uint64_t last =
            clock.last_us.load(std::memory_order_relaxed);
        const bool ran = first != ~std::uint64_t{0} && last > first;
        if (ran)
            timing.wall_seconds =
                static_cast<double>(last - first) * 1e-6;
        result.scheme_timings.push_back(timing);
        if (ran && obs::traceEnabled()) {
            const int tid = 1000 + static_cast<int>(s);
            obs::setTrackName(tid, "scheme " + ids[s]);
            obs::emitSpan(
                ids[s], "scheme", trace_eval_start_us + first,
                last - first,
                "\"shards\":" + std::to_string(timing.shards) +
                    ",\"trials\":" + std::to_string(timing.trials),
                tid);
        }
    }

    // Always flush a final checkpoint: complete on success (so a
    // later --resume is a no-op), partial on interrupt (so --resume
    // loses nothing but the shards in flight).
    if (checkpointing) {
        std::lock_guard<std::mutex> lock(collector.mutex);
        if (Status s = flushCheckpoint(); !s.ok()) {
            warn("campaign: final checkpoint write failed: " +
                 s.toString());
        } else if (result.interrupted) {
            inform("campaign: interrupted; " +
                   std::to_string(collector.completed.size()) + " of " +
                   std::to_string(tasks.size()) +
                   " shard tasks checkpointed to " +
                   spec_.checkpoint_path);
        }
    }

    // Cell tallies are already merged: restored shards at resume
    // time, fresh shards from the per-worker accumulators after the
    // pool joined. Merging is associative and commutative, so the
    // outcome is independent of which worker ran which shard; tasks
    // skipped by an interrupt or a failed scheme contributed nothing.

    // Drop failed schemes from the cells and record them — a partial
    // scheme row would read as a measured (wrong) rate.
    if (!cell_errors.empty()) {
        std::set<std::string> failed;
        for (const auto& [cell, message] : cell_errors) {
            const CampaignCell& c = result.cells[cell];
            if (failed.insert(c.scheme_id).second) {
                warn("campaign: dropping scheme " + c.scheme_id +
                     ": " + message);
                reg.add(mid.schemes_dropped);
                result.errors.push_back(
                    {c.scheme_id,
                     "unavailable: pattern " +
                         patternInfo(c.pattern).label + ": " + message});
            }
        }
        std::erase_if(result.cells, [&](const CampaignCell& c) {
            return failed.count(c.scheme_id) != 0;
        });
    }

    // Workers flushed their metric shards when the pool joined; flush
    // the calling thread's (it was worker 0) and delta the baseline
    // so the result reports only this run's activity.
    reg.flushThisThread();
    result.metrics = reg.snapshot().since(metrics_baseline);
    return result;
}

} // namespace gpuecc::sim
