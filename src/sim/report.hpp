/**
 * @file
 * Campaign result emission: CSV and JSON artifacts.
 *
 * Every bench and example shares one machine-readable surface so
 * downstream tooling (plots, regression dashboards, the CI smoke run)
 * can consume any campaign the same way. JsonWriter is a minimal
 * streaming writer — no external JSON dependency — that the benches
 * also use for their own bespoke artifacts (e.g. BENCH_throughput.json).
 */

#ifndef GPUECC_SIM_REPORT_HPP
#define GPUECC_SIM_REPORT_HPP

#include <string>
#include <vector>

#include "common/status.hpp"
#include "obs/manifest.hpp"
#include "sim/campaign.hpp"

namespace gpuecc::sim {

/** Minimal streaming JSON writer (objects, arrays, scalars). */
class JsonWriter
{
  public:
    JsonWriter& beginObject();
    JsonWriter& endObject();
    JsonWriter& beginArray();
    JsonWriter& endArray();

    /** Key of the next value inside an object. */
    JsonWriter& key(const std::string& k);

    JsonWriter& value(const std::string& v);
    JsonWriter& value(const char* v);
    JsonWriter& value(double v);
    JsonWriter& value(std::uint64_t v);
    JsonWriter& value(int v);
    JsonWriter& value(bool v);

    /** key(k) followed by value(v). */
    template <typename T>
    JsonWriter& kv(const std::string& k, const T& v)
    {
        key(k);
        return value(v);
    }

    /** The document so far; call after closing every scope. */
    const std::string& str() const { return out_; }

  private:
    void separate();

    std::string out_;
    /** One entry per open scope: whether a separator is pending. */
    std::vector<bool> need_comma_{false};
};

/**
 * Campaign cells as CSV: a `# manifest` comment naming the plan
 * identity (schemes, patterns, samples, seed, chunk, codec backend —
 * deliberately nothing thread- or timing-dependent, so the bytes stay
 * identical across thread counts and resumes), then header + one line
 * per cell.
 */
std::string campaignCsv(const CampaignResult& result);

/**
 * Campaign spec, run stats, cells, errors, plus the provenance
 * manifest and a "timing" section (wall/CPU, pool utilization,
 * per-scheme breakdown, campaign.* metric counters) as a JSON
 * document. tools/compare_runs diffs two of these.
 */
std::string campaignJson(const CampaignResult& result);

/** The provenance manifest describing how `result` was produced. */
obs::RunManifest campaignRunManifest(const CampaignResult& result);

/** Serialize a manifest as the next JSON value (after w.key(...)). */
void writeRunManifest(JsonWriter& w, const obs::RunManifest& manifest);

/**
 * Serialize a campaign's timing section as the next JSON value:
 * wall/CPU seconds, throughput, pool telemetry, per-scheme timings,
 * and the campaign.* metric counters/histograms recorded by the run.
 */
void writeCampaignTiming(JsonWriter& w, const CampaignResult& result);

/**
 * Write content to path, detecting every failure mode fopen/fwrite/
 * fclose can report (unwritable path, disk full, I/O error) — a
 * partial artifact is deleted rather than left looking valid.
 */
Status saveTextFile(const std::string& path,
                    const std::string& content);

/**
 * saveTextFile plus an fsync before close, so the bytes are on
 * stable storage when the Status is ok — the write half of the
 * durable write-to-temp + rename + directory-sync recipe the
 * checkpoint writer follows. On platforms without fsync it degrades
 * to saveTextFile.
 */
Status saveTextFileDurable(const std::string& path,
                           const std::string& content);

/**
 * fsync the directory containing @p path. A rename is only durable
 * once the directory holding the new name is synced; a crash after
 * rename but before this call may roll the directory entry back to
 * the old file. No-op ok on platforms without directory fsync.
 */
Status syncParentDirectory(const std::string& path);

/** Read a whole file; notFound / ioError instead of exceptions. */
Result<std::string> loadTextFile(const std::string& path);

/** saveTextFile for contexts with no recovery path; fatal on error. */
void writeTextFile(const std::string& path, const std::string& content);

} // namespace gpuecc::sim

#endif // GPUECC_SIM_REPORT_HPP
