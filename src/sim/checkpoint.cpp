#include "sim/checkpoint.hpp"

#include <cinttypes>
#include <cstdio>
#include <set>

#include "faultsim/shard.hpp"
#include "sim/chaos.hpp"
#include "sim/json.hpp"
#include "sim/report.hpp"

namespace gpuecc::sim {

namespace {

constexpr int kCheckpointVersion = 1;

/** Read one [task, trials, dce, due, sdc, exhaustive] tuple. */
Status
parseEntry(const JsonValue& row, CheckpointEntry& out)
{
    if (!row.isArray() || row.elements().size() != 6) {
        return Status::dataLoss(
            "checkpoint task entry is not a 6-element array");
    }
    const auto& e = row.elements();
    std::uint64_t* fields[] = {&out.task, &out.counts.trials,
                               &out.counts.dce, &out.counts.due,
                               &out.counts.sdc};
    for (int i = 0; i < 5; ++i) {
        Result<std::uint64_t> v = e[i].asUint64();
        if (!v.ok())
            return v.status();
        *fields[i] = v.value();
    }
    Result<bool> exhaustive = e[5].asBool();
    if (!exhaustive.ok())
        return exhaustive.status();
    out.counts.exhaustive = exhaustive.value();
    if (!out.counts.selfConsistent()) {
        return Status::dataLoss(
            "checkpoint task " + std::to_string(out.task) +
            ": dce + due + sdc does not equal trials");
    }
    return {};
}

} // namespace

std::string
campaignFingerprint(const std::vector<std::string>& scheme_ids,
                    const std::vector<ErrorPattern>& patterns,
                    std::uint64_t samples, std::uint64_t seed,
                    std::uint64_t chunk,
                    const std::string& codec_backend,
                    std::uint64_t task_count)
{
    std::string fp = "v1;schemes=";
    for (std::size_t i = 0; i < scheme_ids.size(); ++i)
        fp += (i ? "," : "") + scheme_ids[i];
    fp += ";patterns=";
    for (std::size_t i = 0; i < patterns.size(); ++i) {
        fp += (i ? "," : "") +
              std::to_string(static_cast<int>(patterns[i]));
    }
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  ";samples=%" PRIu64 ";seed=%" PRIu64
                  ";chunk=%" PRIu64 ";block=%" PRIu64
                  ";tasks=%" PRIu64,
                  samples, seed, chunk, kStreamBlockSamples,
                  task_count);
    fp += buf;
    fp += ";backend=" + codec_backend;
    return fp;
}

void
writeCheckpointJson(JsonWriter& w,
                    const CampaignCheckpoint& checkpoint)
{
    w.beginObject();
    w.kv("version", kCheckpointVersion);
    w.kv("fingerprint", checkpoint.fingerprint);
    if (!checkpoint.manifest.empty()) {
        w.key("manifest").beginObject();
        for (const auto& [key, value] : checkpoint.manifest)
            w.kv(key, value);
        w.endObject();
    }
    w.key("tasks").beginArray();
    for (const CheckpointEntry& e : checkpoint.done) {
        w.beginArray();
        w.value(e.task).value(e.counts.trials).value(e.counts.dce);
        w.value(e.counts.due).value(e.counts.sdc);
        w.value(e.counts.exhaustive);
        w.endArray();
    }
    w.endArray();
    w.endObject();
}

Result<CampaignCheckpoint>
checkpointFromJson(const JsonValue& root, const std::string& label)
{
    if (!root.isObject())
        return Status::dataLoss(label +
                                ": document is not an object");

    Result<const JsonValue*> version = root.get("version");
    if (!version.ok())
        return version.status();
    Result<std::uint64_t> v = version.value()->asUint64();
    if (!v.ok())
        return v.status();
    if (v.value() != kCheckpointVersion) {
        return Status::dataLoss(label + ": unsupported version " +
                                std::to_string(v.value()));
    }

    CampaignCheckpoint out;
    Result<const JsonValue*> fingerprint = root.get("fingerprint");
    if (!fingerprint.ok())
        return fingerprint.status();
    Result<std::string> fp = fingerprint.value()->asString();
    if (!fp.ok())
        return fp.status();
    out.fingerprint = fp.value();

    // Optional, informational, lenient: absent in pre-telemetry
    // checkpoints, and non-string values are simply skipped.
    if (const JsonValue* manifest = root.find("manifest")) {
        for (const auto& [key, value] : manifest->members()) {
            if (value.isString())
                out.manifest.emplace_back(
                    key, value.asString().value());
        }
    }

    Result<const JsonValue*> tasks = root.get("tasks");
    if (!tasks.ok())
        return tasks.status();
    if (!tasks.value()->isArray())
        return Status::dataLoss(label + ": \"tasks\" is not an array");

    std::set<std::uint64_t> seen;
    out.done.reserve(tasks.value()->elements().size());
    for (const JsonValue& row : tasks.value()->elements()) {
        CheckpointEntry entry;
        if (Status s = parseEntry(row, entry); !s.ok())
            return Status::dataLoss(label + ": " + s.message());
        if (!seen.insert(entry.task).second) {
            return Status::dataLoss(
                label + ": task " + std::to_string(entry.task) +
                " appears twice");
        }
        out.done.push_back(entry);
    }
    return out;
}

Status
saveCheckpoint(const std::string& path,
               const CampaignCheckpoint& checkpoint)
{
    if (Status chaos = chaosOnCheckpointWrite(); !chaos.ok())
        return chaos;

    JsonWriter w;
    writeCheckpointJson(w, checkpoint);

    // Write-to-temp + rename: readers (and a resume after a crash
    // right here) only ever see the old file or the complete new
    // one. The temp write fsyncs the data, and the directory sync
    // after the rename makes the *name* durable too — an fsynced
    // file a crashed directory forgot is still a lost checkpoint.
    const std::string tmp = path + ".tmp";
    if (Status s = saveTextFileDurable(tmp, w.str()); !s.ok())
        return s;
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return Status::ioError("cannot rename " + tmp + " to " + path);
    }
    return syncParentDirectory(path);
}

Result<CampaignCheckpoint>
loadCheckpoint(const std::string& path)
{
    Result<std::string> text = loadTextFile(path);
    if (!text.ok())
        return text.status();

    Result<JsonValue> doc = parseJson(text.value());
    if (!doc.ok()) {
        return Status::dataLoss("checkpoint " + path + ": " +
                                doc.status().message());
    }
    return checkpointFromJson(doc.value(), "checkpoint " + path);
}

} // namespace gpuecc::sim
