/**
 * @file
 * The common campaign CLI surface.
 *
 * Every evaluation bench and example accepts the same knobs —
 * --samples, --seed, --threads, --chunk, --json, --csv, the fleet
 * flags --fleet-workers and --fleet-unit, the resilience flags
 * --checkpoint, --resume, --checkpoint-interval,
 * and the telemetry flags --trace, --progress, --quiet — declared
 * and decoded here so the tools stay flag-compatible and new tools
 * get the full surface for free.
 */

#ifndef GPUECC_SIM_CLI_HPP
#define GPUECC_SIM_CLI_HPP

#include <string>

#include "common/cli.hpp"
#include "sim/campaign.hpp"

namespace gpuecc::sim {

/**
 * Declare the shared campaign flags on a Cli.
 *
 * @param default_samples default for --samples (tool-specific)
 */
void addCampaignFlags(Cli& cli,
                      const std::string& default_samples = "200000");

/**
 * Build a spec from the shared flags (scheme ids and patterns are
 * tool-specific and left empty for the caller to fill in). Maps
 * --progress/--quiet onto spec.progress (--quiet wins; the default
 * auto-enables the live line on a TTY) and starts trace collection
 * when --trace names a file.
 */
CampaignSpec campaignSpecFromCli(const Cli& cli);

/**
 * Honor --json/--csv: write the campaign artifacts to the requested
 * paths (no-ops when the flags are unset). An unwritable path or a
 * short write is an ioError, never a silently truncated artifact.
 */
Status emitCampaignArtifacts(const CampaignResult& result,
                             const Cli& cli);

/**
 * Standard campaign epilogue: report recorded scheme errors, write
 * the artifacts, flush the trace started by --trace (on interrupted
 * runs too — a partial trace is still viewable), and map the outcome
 * to a process exit code — 130 (interrupted; artifacts are skipped,
 * the checkpoint holds the progress), 1 (artifact or trace write
 * failed), 0 otherwise. Intended as
 * `return sim::finalizeCampaign(result, cli);` from main().
 */
int finalizeCampaign(const CampaignResult& result, const Cli& cli);

} // namespace gpuecc::sim

#endif // GPUECC_SIM_CLI_HPP
