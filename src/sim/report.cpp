#include "sim/report.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/log.hpp"
#include "gf256/gf256_vec.hpp"
#include "obs/trace.hpp"

namespace gpuecc::sim {

namespace {

std::string
escapeJson(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

void
JsonWriter::separate()
{
    if (need_comma_.back())
        out_ += ',';
    need_comma_.back() = true;
}

JsonWriter&
JsonWriter::beginObject()
{
    separate();
    out_ += '{';
    need_comma_.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::endObject()
{
    out_ += '}';
    need_comma_.pop_back();
    return *this;
}

JsonWriter&
JsonWriter::beginArray()
{
    separate();
    out_ += '[';
    need_comma_.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::endArray()
{
    out_ += ']';
    need_comma_.pop_back();
    return *this;
}

JsonWriter&
JsonWriter::key(const std::string& k)
{
    separate();
    out_ += '"' + escapeJson(k) + "\":";
    // The upcoming value must not emit another separator.
    need_comma_.back() = false;
    return *this;
}

JsonWriter&
JsonWriter::value(const std::string& v)
{
    separate();
    out_ += '"' + escapeJson(v) + '"';
    return *this;
}

JsonWriter&
JsonWriter::value(const char* v)
{
    return value(std::string(v));
}

JsonWriter&
JsonWriter::value(double v)
{
    separate();
    out_ += formatDouble(v);
    return *this;
}

JsonWriter&
JsonWriter::value(std::uint64_t v)
{
    separate();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out_ += buf;
    return *this;
}

JsonWriter&
JsonWriter::value(int v)
{
    separate();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter&
JsonWriter::value(bool v)
{
    separate();
    out_ += v ? "true" : "false";
    return *this;
}

std::string
campaignCsv(const CampaignResult& result)
{
    // Plan identity only: no threads, no timing, no host facts.
    // CI diffs these bytes across thread counts and resumes.
    std::string out = "# manifest schemes=";
    const auto& ids = result.spec.scheme_ids;
    for (std::size_t i = 0; i < ids.size(); ++i)
        out += (i ? "," : "") + ids[i];
    out += " patterns=";
    const auto patterns = result.spec.resolvedPatterns();
    for (std::size_t i = 0; i < patterns.size(); ++i)
        out += (i ? "," : "") + patternInfo(patterns[i]).label;
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  " samples=%" PRIu64 " seed=%" PRIu64
                  " chunk=%" PRIu64,
                  result.spec.samples, result.spec.seed,
                  result.spec.chunk);
    out += buf;
    out += " codec=" + result.codec_backend + "\n";
    out += "scheme,pattern,trials,dce,due,sdc,exhaustive,"
           "dce_rate,due_rate,sdc_rate,sdc_ci_lo,"
           "sdc_ci_hi\n";
    for (const CampaignCell& cell : result.cells) {
        const OutcomeCounts& c = cell.counts;
        const Interval ci = c.sdcInterval();
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "%s,%s,%" PRIu64 ",%" PRIu64 ",%" PRIu64
                      ",%" PRIu64 ",%d,%.9g,%.9g,%.9g,%.9g,%.9g\n",
                      cell.scheme_id.c_str(),
                      patternInfo(cell.pattern).label.c_str(),
                      c.trials, c.dce, c.due, c.sdc,
                      c.exhaustive ? 1 : 0, c.dceRate(), c.dueRate(),
                      c.sdcRate(), ci.lo, ci.hi);
        out += buf;
    }
    return out;
}

obs::RunManifest
campaignRunManifest(const CampaignResult& result)
{
    obs::RunManifest m;
    m.tool = obs::toolName();
    m.build = obs::buildInfo();
    m.threads = result.spec.threads;
    m.codec_backend = result.codec_backend;
    m.simd_isa = gf256::isaName(gf256::bestIsa());
    m.chaos = obs::chaosEnvText();
    m.samples = result.spec.samples;
    m.seed = result.spec.seed;
    m.chunk = result.spec.chunk;
    m.fleet_workers = result.fleet.workers;
    m.affinity = result.pool.affinity;
    m.schemes = result.spec.scheme_ids;
    m.traced = obs::traceEnabled();
    m.hosts = result.fleet.worker_records;
    return m;
}

void
writeRunManifest(JsonWriter& w, const obs::RunManifest& manifest)
{
    w.beginObject();
    w.kv("tool", manifest.tool);
    w.kv("build_type", manifest.build.build_type);
    w.kv("compiler", manifest.build.compiler);
    w.kv("platform", manifest.build.platform);
    w.kv("hardware_threads", manifest.build.hardware_threads);
    w.kv("threads", manifest.threads);
    w.kv("codec_backend", manifest.codec_backend);
    w.kv("simd_isa", manifest.simd_isa);
    w.kv("chaos", manifest.chaos);
    w.kv("samples", manifest.samples);
    w.kv("seed", manifest.seed);
    w.kv("chunk", manifest.chunk);
    w.kv("fleet_workers", manifest.fleet_workers);
    w.kv("affinity", manifest.affinity);
    w.key("schemes").beginArray();
    for (const std::string& id : manifest.schemes)
        w.value(id);
    w.endArray();
    w.kv("traced", manifest.traced);
    // Only fleet runs carry host records; omitting the key otherwise
    // keeps in-process manifests byte-identical to pre-fleet ones.
    if (!manifest.hosts.empty()) {
        w.key("hosts").beginArray();
        for (const obs::FleetWorkerRecord& h : manifest.hosts) {
            w.beginObject();
            w.kv("worker", h.worker);
            w.kv("agent", h.agent);
            w.kv("remote", h.remote);
            w.kv("units", h.units);
            w.kv("shards", h.shards);
            w.kv("trials", h.trials);
            w.kv("busy_seconds", h.busy_seconds);
            w.kv("exit_code", h.exit_code);
            w.kv("lost", h.lost);
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
}

void
writeCampaignTiming(JsonWriter& w, const CampaignResult& result)
{
    w.beginObject();
    w.kv("wall_seconds", result.seconds);
    w.kv("cpu_seconds", result.cpu_seconds);
    w.kv("trials_per_second", result.trialsPerSecond());

    w.key("pool").beginObject();
    w.kv("threads", result.pool.threads);
    w.kv("tasks_executed", result.pool.tasks_executed);
    w.kv("steals", result.pool.steals);
    w.kv("busy_seconds", result.pool.busy_seconds);
    w.kv("wall_seconds", result.pool.wall_seconds);
    w.kv("utilization", result.pool.utilization());
    w.kv("idle_fraction", result.pool.idleFraction());
    w.kv("affinity", result.pool.affinity);
    // Per-worker load split: worker i's busy seconds and its share
    // of the pool wall clock — the imbalance view the aggregate
    // utilization hides.
    w.key("workers").beginArray();
    for (std::size_t i = 0;
         i < result.pool.worker_busy_seconds.size(); ++i) {
        w.beginObject();
        w.kv("worker", static_cast<std::uint64_t>(i));
        w.kv("busy_seconds", result.pool.worker_busy_seconds[i]);
        w.kv("utilization", result.pool.workerUtilization(i));
        w.endObject();
    }
    w.endArray();
    w.endObject();

    // Fleet section only for fleet runs, so in-process artifacts keep
    // their pre-fleet shape byte-for-byte.
    if (result.fleet.workers > 0) {
        const obs::FleetTelemetry& f = result.fleet;
        w.key("fleet").beginObject();
        w.kv("workers", f.workers);
        w.kv("units", f.units);
        w.kv("unit_shards", f.unit_shards);
        w.kv("queue_capacity", f.queue_capacity);
        w.kv("requeues", f.requeues);
        w.kv("workers_lost", f.workers_lost);
        w.kv("parent_fallback_shards", f.parent_fallback_shards);
        w.kv("units_poisoned", f.units_poisoned);
        w.kv("duplicate_results", f.duplicate_results);
        w.kv("worker_timeouts", f.worker_timeouts);
        w.kv("heartbeat_expiries", f.heartbeat_expiries);
        w.kv("agents_connected", f.agents_connected);
        w.kv("auth_failures", f.auth_failures);
        w.key("worker_records").beginArray();
        for (const obs::FleetWorkerRecord& r : f.worker_records) {
            w.beginObject();
            w.kv("worker", r.worker);
            w.kv("pid", static_cast<std::uint64_t>(
                            r.pid < 0 ? 0 : r.pid));
            w.kv("units", r.units);
            w.kv("shards", r.shards);
            w.kv("trials", r.trials);
            w.kv("busy_seconds", r.busy_seconds);
            w.kv("exit_code", r.exit_code);
            w.kv("lost", r.lost);
            w.kv("remote", r.remote);
            w.kv("agent", r.agent);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }

    w.key("schemes").beginArray();
    for (const obs::SchemeTiming& t : result.scheme_timings) {
        w.beginObject();
        w.kv("scheme", t.scheme_id);
        w.kv("wall_seconds", t.wall_seconds);
        w.kv("cpu_seconds", t.cpu_seconds);
        w.kv("shards", t.shards);
        w.kv("trials", t.trials);
        w.endObject();
    }
    w.endArray();

    w.key("counters").beginObject();
    for (const obs::CounterValue& c : result.metrics.counters)
        w.kv(c.name, c.value);
    w.endObject();

    w.key("histograms").beginObject();
    for (const obs::HistogramValue& h : result.metrics.histograms) {
        w.key(h.name).beginObject();
        w.key("bounds").beginArray();
        for (const std::uint64_t b : h.bounds)
            w.value(b);
        w.endArray();
        w.key("counts").beginArray();
        for (const std::uint64_t c : h.counts)
            w.value(c);
        w.endArray();
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

std::string
campaignJson(const CampaignResult& result)
{
    JsonWriter w;
    w.beginObject();
    w.key("spec").beginObject();
    w.kv("samples", result.spec.samples);
    w.kv("seed", result.spec.seed);
    w.kv("threads", result.spec.threads);
    w.kv("chunk", result.spec.chunk);
    w.kv("fleet_workers", result.spec.fleet_workers);
    w.kv("fleet_unit", result.spec.fleet_unit_shards);
    w.key("schemes").beginArray();
    for (const std::string& id : result.spec.scheme_ids)
        w.value(id);
    w.endArray();
    w.endObject();

    w.kv("codec_backend", result.codec_backend);
    w.kv("seconds", result.seconds);
    w.kv("shards", result.shards);
    w.kv("total_trials", result.totalTrials());
    w.kv("trials_per_second", result.trialsPerSecond());

    w.key("manifest");
    writeRunManifest(w, campaignRunManifest(result));
    w.key("timing");
    writeCampaignTiming(w, result);

    // Degradations the run recorded (skipped schemes); empty on a
    // clean run, so resumed and uninterrupted reports stay diffable.
    w.key("errors").beginArray();
    for (const CampaignError& e : result.errors) {
        w.beginObject();
        w.kv("scheme", e.scheme_id);
        w.kv("message", e.message);
        w.endObject();
    }
    w.endArray();

    w.key("cells").beginArray();
    for (const CampaignCell& cell : result.cells) {
        const OutcomeCounts& c = cell.counts;
        const Interval ci = c.sdcInterval();
        w.beginObject();
        w.kv("scheme", cell.scheme_id);
        w.kv("pattern", patternInfo(cell.pattern).label);
        w.kv("trials", c.trials);
        w.kv("dce", c.dce);
        w.kv("due", c.due);
        w.kv("sdc", c.sdc);
        w.kv("exhaustive", c.exhaustive);
        w.kv("dce_rate", c.dceRate());
        w.kv("due_rate", c.dueRate());
        w.kv("sdc_rate", c.sdcRate());
        w.kv("sdc_ci_lo", ci.lo);
        w.kv("sdc_ci_hi", ci.hi);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

Status
saveTextFile(const std::string& path, const std::string& content)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        return Status::ioError("cannot open " + path +
                               " for writing: " +
                               std::strerror(errno));
    }
    const std::size_t written =
        std::fwrite(content.data(), 1, content.size(), f);
    // fclose flushes the stdio buffer, so a full disk can surface
    // here even when every fwrite "succeeded".
    const bool flushed = std::fclose(f) == 0;
    if (written != content.size() || !flushed) {
        std::remove(path.c_str());
        return Status::ioError("short write to " + path +
                               " (disk full or I/O error); partial "
                               "file removed");
    }
    return {};
}

#if defined(__unix__) || defined(__APPLE__)

Status
saveTextFileDurable(const std::string& path,
                    const std::string& content)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        return Status::ioError("cannot open " + path +
                               " for writing: " +
                               std::strerror(errno));
    }
    const std::size_t written =
        std::fwrite(content.data(), 1, content.size(), f);
    const bool flushed = std::fflush(f) == 0;
    // fsync before close: a Status::ok must mean the bytes survived
    // a crash, not just that they reached the page cache.
    const bool synced = flushed && fsync(fileno(f)) == 0;
    const bool closed = std::fclose(f) == 0;
    if (written != content.size() || !flushed || !synced || !closed) {
        std::remove(path.c_str());
        return Status::ioError("durable write to " + path +
                               " failed (disk full or I/O error); "
                               "partial file removed");
    }
    return {};
}

Status
syncParentDirectory(const std::string& path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const int fd = open(dir.empty() ? "/" : dir.c_str(),
                        O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
        return Status::ioError("cannot open directory " + dir +
                               " for fsync: " + std::strerror(errno));
    }
    const bool synced = fsync(fd) == 0;
    const int err = errno;
    close(fd);
    if (!synced) {
        return Status::ioError("fsync of directory " + dir +
                               " failed: " + std::strerror(err));
    }
    return {};
}

#else // no POSIX fsync: degrade to the plain write

Status
saveTextFileDurable(const std::string& path,
                    const std::string& content)
{
    return saveTextFile(path, content);
}

Status
syncParentDirectory(const std::string&)
{
    return {};
}

#endif

Result<std::string>
loadTextFile(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        const int err = errno;
        const std::string detail =
            "cannot open " + path + ": " + std::strerror(err);
        if (err == ENOENT)
            return Status::notFound(detail);
        return Status::ioError(detail);
    }
    std::string content;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        content.append(buf, n);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error)
        return Status::ioError("read error on " + path);
    return content;
}

void
writeTextFile(const std::string& path, const std::string& content)
{
    if (Status s = saveTextFile(path, content); !s.ok())
        fatal(s.toString());
}

} // namespace gpuecc::sim
