#include "sim/report.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/log.hpp"

namespace gpuecc::sim {

namespace {

std::string
escapeJson(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

void
JsonWriter::separate()
{
    if (need_comma_.back())
        out_ += ',';
    need_comma_.back() = true;
}

JsonWriter&
JsonWriter::beginObject()
{
    separate();
    out_ += '{';
    need_comma_.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::endObject()
{
    out_ += '}';
    need_comma_.pop_back();
    return *this;
}

JsonWriter&
JsonWriter::beginArray()
{
    separate();
    out_ += '[';
    need_comma_.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::endArray()
{
    out_ += ']';
    need_comma_.pop_back();
    return *this;
}

JsonWriter&
JsonWriter::key(const std::string& k)
{
    separate();
    out_ += '"' + escapeJson(k) + "\":";
    // The upcoming value must not emit another separator.
    need_comma_.back() = false;
    return *this;
}

JsonWriter&
JsonWriter::value(const std::string& v)
{
    separate();
    out_ += '"' + escapeJson(v) + '"';
    return *this;
}

JsonWriter&
JsonWriter::value(const char* v)
{
    return value(std::string(v));
}

JsonWriter&
JsonWriter::value(double v)
{
    separate();
    out_ += formatDouble(v);
    return *this;
}

JsonWriter&
JsonWriter::value(std::uint64_t v)
{
    separate();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out_ += buf;
    return *this;
}

JsonWriter&
JsonWriter::value(int v)
{
    separate();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter&
JsonWriter::value(bool v)
{
    separate();
    out_ += v ? "true" : "false";
    return *this;
}

std::string
campaignCsv(const CampaignResult& result)
{
    std::string out = "scheme,pattern,trials,dce,due,sdc,exhaustive,"
                      "dce_rate,due_rate,sdc_rate,sdc_ci_lo,"
                      "sdc_ci_hi\n";
    for (const CampaignCell& cell : result.cells) {
        const OutcomeCounts& c = cell.counts;
        const Interval ci = c.sdcInterval();
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "%s,%s,%" PRIu64 ",%" PRIu64 ",%" PRIu64
                      ",%" PRIu64 ",%d,%.9g,%.9g,%.9g,%.9g,%.9g\n",
                      cell.scheme_id.c_str(),
                      patternInfo(cell.pattern).label.c_str(),
                      c.trials, c.dce, c.due, c.sdc,
                      c.exhaustive ? 1 : 0, c.dceRate(), c.dueRate(),
                      c.sdcRate(), ci.lo, ci.hi);
        out += buf;
    }
    return out;
}

std::string
campaignJson(const CampaignResult& result)
{
    JsonWriter w;
    w.beginObject();
    w.key("spec").beginObject();
    w.kv("samples", result.spec.samples);
    w.kv("seed", result.spec.seed);
    w.kv("threads", result.spec.threads);
    w.kv("chunk", result.spec.chunk);
    w.key("schemes").beginArray();
    for (const std::string& id : result.spec.scheme_ids)
        w.value(id);
    w.endArray();
    w.endObject();

    w.kv("codec_backend", result.codec_backend);
    w.kv("seconds", result.seconds);
    w.kv("shards", result.shards);
    w.kv("total_trials", result.totalTrials());
    w.kv("trials_per_second", result.trialsPerSecond());

    // Degradations the run recorded (skipped schemes); empty on a
    // clean run, so resumed and uninterrupted reports stay diffable.
    w.key("errors").beginArray();
    for (const CampaignError& e : result.errors) {
        w.beginObject();
        w.kv("scheme", e.scheme_id);
        w.kv("message", e.message);
        w.endObject();
    }
    w.endArray();

    w.key("cells").beginArray();
    for (const CampaignCell& cell : result.cells) {
        const OutcomeCounts& c = cell.counts;
        const Interval ci = c.sdcInterval();
        w.beginObject();
        w.kv("scheme", cell.scheme_id);
        w.kv("pattern", patternInfo(cell.pattern).label);
        w.kv("trials", c.trials);
        w.kv("dce", c.dce);
        w.kv("due", c.due);
        w.kv("sdc", c.sdc);
        w.kv("exhaustive", c.exhaustive);
        w.kv("dce_rate", c.dceRate());
        w.kv("due_rate", c.dueRate());
        w.kv("sdc_rate", c.sdcRate());
        w.kv("sdc_ci_lo", ci.lo);
        w.kv("sdc_ci_hi", ci.hi);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

Status
saveTextFile(const std::string& path, const std::string& content)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        return Status::ioError("cannot open " + path +
                               " for writing: " +
                               std::strerror(errno));
    }
    const std::size_t written =
        std::fwrite(content.data(), 1, content.size(), f);
    // fclose flushes the stdio buffer, so a full disk can surface
    // here even when every fwrite "succeeded".
    const bool flushed = std::fclose(f) == 0;
    if (written != content.size() || !flushed) {
        std::remove(path.c_str());
        return Status::ioError("short write to " + path +
                               " (disk full or I/O error); partial "
                               "file removed");
    }
    return {};
}

Result<std::string>
loadTextFile(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        const int err = errno;
        const std::string detail =
            "cannot open " + path + ": " + std::strerror(err);
        if (err == ENOENT)
            return Status::notFound(detail);
        return Status::ioError(detail);
    }
    std::string content;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        content.append(buf, n);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error)
        return Status::ioError("read error on " + path);
    return content;
}

void
writeTextFile(const std::string& path, const std::string& content)
{
    if (Status s = saveTextFile(path, content); !s.ok())
        fatal(s.toString());
}

} // namespace gpuecc::sim
