/**
 * @file
 * Minimal JSON parser — the read side of report.hpp's JsonWriter.
 *
 * Parses the documents this library itself writes (checkpoints,
 * campaign reports) into a small DOM. Numbers keep their raw token so
 * 64-bit counters round-trip exactly: asUint64() re-parses the token
 * with full range checking instead of losing precision through a
 * double, which is what makes checkpoint width validation possible.
 * Errors are structured (Result), never thrown.
 */

#ifndef GPUECC_SIM_JSON_HPP
#define GPUECC_SIM_JSON_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace gpuecc::sim {

/** One parsed JSON value (a tree of these is a document). */
class JsonValue
{
  public:
    enum class Kind
    {
        null,
        boolean,
        number,
        string,
        array,
        object
    };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::null; }
    bool isBool() const { return kind_ == Kind::boolean; }
    bool isNumber() const { return kind_ == Kind::number; }
    bool isString() const { return kind_ == Kind::string; }
    bool isArray() const { return kind_ == Kind::array; }
    bool isObject() const { return kind_ == Kind::object; }

    /** The boolean; error unless isBool(). */
    Result<bool> asBool() const;

    /**
     * The number as an unsigned 64-bit integer; error when the value
     * is not a number, not integral, negative, or out of range (the
     * checkpoint loader's width check).
     */
    Result<std::uint64_t> asUint64() const;

    /** The number as a double; error unless isNumber(). */
    Result<double> asDouble() const;

    /** The string; error unless isString(). */
    Result<std::string> asString() const;

    /** Array elements (empty unless isArray()). */
    const std::vector<JsonValue>& elements() const { return elements_; }

    /** Object members in document order (empty unless isObject()). */
    const std::vector<std::pair<std::string, JsonValue>>&
    members() const
    {
        return members_;
    }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue* find(const std::string& key) const;

    /** Member lookup that reports the missing key as an error. */
    Result<const JsonValue*> get(const std::string& key) const;

  private:
    friend class JsonParser;

    Kind kind_ = Kind::null;
    bool bool_ = false;
    /** Raw number token (isNumber) or decoded text (isString). */
    std::string scalar_;
    std::vector<JsonValue> elements_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/**
 * Parse a complete JSON document. Trailing non-whitespace, unknown
 * escapes, and nesting deeper than 64 levels are dataLoss errors with
 * the byte offset in the message.
 */
Result<JsonValue> parseJson(const std::string& text);

} // namespace gpuecc::sim

#endif // GPUECC_SIM_JSON_HPP
