#include "sim/cli.hpp"

#include "common/log.hpp"
#include "sim/report.hpp"

namespace gpuecc::sim {

void
addCampaignFlags(Cli& cli, const std::string& default_samples)
{
    cli.addFlag("samples", default_samples,
                "Monte Carlo samples for beat/entry patterns");
    cli.addFlag("seed", "0x5EED",
                "campaign seed (results bit-identical per seed)");
    cli.addFlag("threads", "1",
                "worker threads (0 = one per hardware thread)");
    cli.addFlag("chunk", "65536", "samples per shard");
    cli.addFlag("json", "", "write campaign results to this JSON file");
    cli.addFlag("csv", "", "write campaign results to this CSV file");
}

CampaignSpec
campaignSpecFromCli(const Cli& cli)
{
    CampaignSpec spec;
    spec.samples = static_cast<std::uint64_t>(cli.getInt("samples"));
    spec.seed = static_cast<std::uint64_t>(cli.getInt("seed"));
    spec.threads = static_cast<int>(cli.getInt("threads"));
    spec.chunk = static_cast<std::uint64_t>(cli.getInt("chunk"));
    if (spec.chunk == 0)
        fatal("--chunk must be positive");
    if (spec.threads < 0)
        fatal("--threads must be >= 0 (0 selects all cores)");
    return spec;
}

void
emitCampaignArtifacts(const CampaignResult& result, const Cli& cli)
{
    const std::string json = cli.getString("json");
    if (!json.empty())
        writeTextFile(json, campaignJson(result));
    const std::string csv = cli.getString("csv");
    if (!csv.empty())
        writeTextFile(csv, campaignCsv(result));
}

} // namespace gpuecc::sim
