#include "sim/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/log.hpp"
#include "obs/trace.hpp"
#include "sim/report.hpp"

namespace gpuecc::sim {

void
addCampaignFlags(Cli& cli, const std::string& default_samples)
{
    cli.addFlag("samples", default_samples,
                "Monte Carlo samples for beat/entry patterns");
    cli.addFlag("seed", "0x5EED",
                "campaign seed (results bit-identical per seed)");
    cli.addFlag("threads", "1",
                "worker threads (0 = one per hardware thread)");
    cli.addFlag("chunk", "65536", "samples per shard");
    cli.addFlag("affinity", "false",
                "pin worker i to hardware thread i (placement hint; "
                "results are byte-identical either way, no-op where "
                "unsupported)");
    cli.addFlag("fleet-workers", "0",
                "fork this many worker processes and dispatch shard "
                "work units to them over pipes (0 = in-process; "
                "tallies and CSV are bit-identical either way)");
    cli.addFlag("fleet-unit", "4",
                "shard tasks per fleet work unit (dispatch "
                "granularity; larger amortizes pipe round-trips, "
                "smaller rebalances and re-queues faster)");
    cli.addFlag("fleet-listen", "",
                "serve this campaign as a multi-host fleet service on "
                "host:port (\":0\" picks a free port; remote "
                "fleet_agent processes connect and evaluate work "
                "units; --fleet-workers become local standby workers; "
                "tallies and CSV stay bit-identical)");
    cli.addFlag("fleet-secret", "",
                "shared secret authenticating fleet agents (falls "
                "back to $GPUECC_FLEET_SECRET; both sides must "
                "agree, including on the empty default)");
    cli.addFlag("fleet-worker-timeout", "0",
                "seconds a dispatched work unit may stay in flight "
                "before its host is presumed hung and the unit is "
                "re-queued (0 = no deadline)");
    cli.addFlag("fleet-heartbeat-timeout", "10",
                "seconds of wire silence before a connected agent is "
                "presumed dead (agents beat at a quarter of this)");
    cli.addFlag("fleet-grace", "30",
                "seconds the fleet service waits for (re)connecting "
                "agents before degrading to local standby workers, "
                "then to in-process execution");
    cli.addFlag("fleet-max-unit-attempts", "3",
                "dispatch attempts before a work unit is declared "
                "poisonous and its (scheme, pattern) cell failed");
    cli.addFlag("obs-listen", "",
                "serve read-only live observability for a fleet "
                "campaign on host:port (\":0\" picks a free port): "
                "Prometheus text at /metrics, campaign status JSON at "
                "/status; safe to curl mid-run, never perturbs "
                "determinism (needs --fleet-listen)");
    cli.addFlag("journal", "",
                "append every fleet lifecycle event (connect, "
                "dispatch, result, requeue, poison, fallback, drain) "
                "to this NDJSON file, written through with fsync; "
                "replay it with fleet_journal (needs fleet mode)");
    cli.addFlag("json", "", "write campaign results to this JSON file");
    cli.addFlag("csv", "", "write campaign results to this CSV file");
    cli.addFlag("checkpoint", "",
                "persist progress to this file (atomic; also flushed "
                "on SIGINT/SIGTERM)");
    cli.addFlag("resume", "false",
                "restore completed shards from --checkpoint before "
                "running (bit-identical to an uninterrupted run)");
    cli.addFlag("checkpoint-interval", "30",
                "min seconds between periodic checkpoint flushes "
                "(0 = after every shard)");
    cli.addFlag("trace", "",
                "write a Chrome trace-event JSON (Perfetto-loadable) "
                "of campaign phases, shards, and checkpoint flushes "
                "to this file");
    cli.addFlag("progress", "false",
                "force the live progress line on stderr (default: "
                "auto-enabled when stderr is a TTY)");
    cli.addFlag("quiet", "false",
                "suppress the live progress line (wins over "
                "--progress)");
}

CampaignSpec
campaignSpecFromCli(const Cli& cli)
{
    CampaignSpec spec;
    spec.samples = static_cast<std::uint64_t>(cli.getInt("samples"));
    spec.seed = static_cast<std::uint64_t>(cli.getInt("seed"));
    spec.threads = static_cast<int>(cli.getInt("threads"));
    spec.chunk = static_cast<std::uint64_t>(cli.getInt("chunk"));
    spec.affinity = cli.getBool("affinity");
    spec.fleet_workers =
        static_cast<int>(cli.getInt("fleet-workers"));
    spec.fleet_unit_shards =
        static_cast<std::uint64_t>(cli.getInt("fleet-unit"));
    spec.fleet_listen = cli.getString("fleet-listen");
    spec.fleet_secret = cli.getString("fleet-secret");
    if (spec.fleet_secret.empty()) {
        if (const char* env = std::getenv("GPUECC_FLEET_SECRET"))
            spec.fleet_secret = env;
    }
    spec.fleet_worker_timeout_s =
        cli.getDouble("fleet-worker-timeout");
    spec.fleet_heartbeat_timeout_s =
        cli.getDouble("fleet-heartbeat-timeout");
    spec.fleet_grace_s = cli.getDouble("fleet-grace");
    spec.fleet_max_unit_attempts =
        static_cast<int>(cli.getInt("fleet-max-unit-attempts"));
    spec.obs_listen = cli.getString("obs-listen");
    spec.journal_path = cli.getString("journal");
    spec.checkpoint_path = cli.getString("checkpoint");
    spec.resume = cli.getBool("resume");
    spec.checkpoint_interval_s = cli.getDouble("checkpoint-interval");
    if (spec.chunk == 0)
        fatal("--chunk must be positive");
    if (spec.threads < 0)
        fatal("--threads must be >= 0 (0 selects all cores)");
    if (spec.fleet_workers < 0 || spec.fleet_workers > 4096)
        fatal("--fleet-workers must be in [0, 4096]");
    if (spec.fleet_unit_shards == 0)
        fatal("--fleet-unit must be positive");
    if (spec.fleet_worker_timeout_s < 0)
        fatal("--fleet-worker-timeout must be >= 0");
    if (spec.fleet_heartbeat_timeout_s <= 0)
        fatal("--fleet-heartbeat-timeout must be positive");
    if (spec.fleet_grace_s < 0)
        fatal("--fleet-grace must be >= 0");
    if (spec.fleet_max_unit_attempts < 1)
        fatal("--fleet-max-unit-attempts must be >= 1");
    if (!spec.obs_listen.empty() && spec.fleet_listen.empty())
        fatal("--obs-listen needs --fleet-listen (the live endpoint "
              "samples the fleet dispatcher)");
    if (!spec.journal_path.empty() && spec.fleet_listen.empty() &&
        spec.fleet_workers == 0)
        fatal("--journal needs a fleet mode (--fleet-workers or "
              "--fleet-listen); the journal records fleet dispatch "
              "events");
    if (spec.resume && spec.checkpoint_path.empty())
        fatal("--resume needs --checkpoint to name the file");
    if (spec.checkpoint_interval_s < 0)
        fatal("--checkpoint-interval must be >= 0");
    if (cli.getBool("quiet"))
        spec.progress = obs::ProgressMode::off;
    else if (cli.getBool("progress"))
        spec.progress = obs::ProgressMode::on;
    else
        spec.progress = obs::ProgressMode::autoTty;
    const std::string trace = cli.getString("trace");
    if (!trace.empty())
        obs::startTrace(trace);
    return spec;
}

Status
emitCampaignArtifacts(const CampaignResult& result, const Cli& cli)
{
    const std::string json = cli.getString("json");
    if (!json.empty()) {
        if (Status s = saveTextFile(json, campaignJson(result));
            !s.ok())
            return s;
    }
    const std::string csv = cli.getString("csv");
    if (!csv.empty()) {
        if (Status s = saveTextFile(csv, campaignCsv(result)); !s.ok())
            return s;
    }
    return {};
}

namespace {

/** Flush the --trace buffer to disk; 0 on success or no trace. */
int
writeTraceIfStarted()
{
    if (!obs::traceEnabled())
        return 0;
    const std::string path = obs::tracePath();
    if (Status s = obs::stopTraceAndWrite(); !s.ok()) {
        warn("campaign: trace write failed: " + s.toString());
        return 1;
    }
    inform("campaign: wrote trace to " + path);
    return 0;
}

} // namespace

int
finalizeCampaign(const CampaignResult& result, const Cli& cli)
{
    for (const CampaignError& e : result.errors) {
        warn("campaign: scheme " + e.scheme_id + " skipped: " +
             e.message);
    }
    if (result.interrupted) {
        // A partial trace is still viewable; flush it before exiting.
        writeTraceIfStarted();
        const std::string& path = result.spec.checkpoint_path;
        std::string hint = "rerun with --resume";
        if (!path.empty())
            hint += " --checkpoint " + path;
        std::fprintf(stderr, "campaign interrupted; %s to continue\n",
                     hint.c_str());
        return 130; // 128 + SIGINT, the conventional interrupt code
    }
    if (Status s = emitCampaignArtifacts(result, cli); !s.ok()) {
        warn("campaign: artifact write failed: " + s.toString());
        writeTraceIfStarted();
        return 1;
    }
    return writeTraceIfStarted();
}

} // namespace gpuecc::sim
