#include "sim/chaos.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <mutex>

#include "common/interrupt.hpp"
#include "common/log.hpp"

namespace gpuecc::sim {

namespace {

/** Armed spec plus live countdown counters. */
struct ChaosState
{
    ChaosSpec spec;
    std::atomic<int> task_faults_left{0};
    std::atomic<int> ckpt_fails_left{0};
    std::atomic<bool> killed{false};
    bool active = false;
};

ChaosState&
state()
{
    static ChaosState s;
    return s;
}

std::once_flag env_once;

/** First-use read of GPUECC_CHAOS (mirrors GPUECC_REFERENCE_CODEC). */
void
initFromEnvironment()
{
    std::call_once(env_once, [] {
        const char* env = std::getenv("GPUECC_CHAOS");
        if (env == nullptr || *env == '\0')
            return;
        Result<ChaosSpec> parsed = parseChaosSpec(env);
        if (!parsed.ok())
            fatal("GPUECC_CHAOS: " + parsed.status().toString());
        setChaosSpec(parsed.value());
        warn(std::string("chaos harness armed: GPUECC_CHAOS=") + env);
    });
}

Result<std::int64_t>
parseChaosInt(const std::string& key, const std::string& text)
{
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 0);
    if (text.empty() || errno == ERANGE ||
        end != text.c_str() + text.size()) {
        return Status::invalidArgument("chaos key '" + key +
                                       "': bad number '" + text + "'");
    }
    return static_cast<std::int64_t>(v);
}

} // namespace

Result<ChaosSpec>
parseChaosSpec(const std::string& text)
{
    ChaosSpec spec;
    std::size_t start = 0;
    while (start < text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? text.size() : comma;
        const std::string item = text.substr(start, end - start);
        start = end + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            return Status::invalidArgument(
                "chaos item '" + item + "' is not key=value");
        }
        const std::string key = item.substr(0, eq);
        Result<std::int64_t> value =
            parseChaosInt(key, item.substr(eq + 1));
        if (!value.ok())
            return value.status();
        if (key == "task_fault") {
            spec.task_fault = value.value();
        } else if (key == "task_fault_count") {
            spec.task_fault_count = static_cast<int>(value.value());
        } else if (key == "kill_after") {
            spec.kill_after = value.value();
        } else if (key == "ckpt_fail") {
            spec.ckpt_fail = static_cast<int>(value.value());
        } else if (key == "fleet_exit_worker") {
            spec.fleet_exit_worker = value.value();
        } else if (key == "fleet_exit_after") {
            spec.fleet_exit_after = value.value();
        } else {
            return Status::invalidArgument("unknown chaos key '" + key +
                                           "'");
        }
    }
    return spec;
}

void
setChaosSpec(const ChaosSpec& spec)
{
    ChaosState& s = state();
    s.spec = spec;
    s.task_faults_left.store(
        spec.task_fault >= 0 ? spec.task_fault_count : 0,
        std::memory_order_relaxed);
    s.ckpt_fails_left.store(spec.ckpt_fail, std::memory_order_relaxed);
    s.killed.store(false, std::memory_order_relaxed);
    s.active = true;
}

void
clearChaosSpec()
{
    setChaosSpec(ChaosSpec{});
    state().active = false;
}

bool
chaosActive()
{
    initFromEnvironment();
    return state().active;
}

void
chaosOnTaskAttempt(std::uint64_t plan_index)
{
    if (!chaosActive())
        return;
    ChaosState& s = state();
    if (s.spec.task_fault < 0 ||
        plan_index != static_cast<std::uint64_t>(s.spec.task_fault))
        return;
    // Decrement the budget; attempts beyond it succeed (the retry
    // path) so task_fault_count=1 models a transient fault and >=2 a
    // persistent one.
    int left = s.task_faults_left.load(std::memory_order_relaxed);
    while (left > 0) {
        if (s.task_faults_left.compare_exchange_weak(
                left, left - 1, std::memory_order_relaxed)) {
            throw ChaosTaskFault(
                "chaos: injected fault in shard task " +
                std::to_string(plan_index));
        }
    }
}

void
chaosOnTaskDone(std::uint64_t completed_total)
{
    if (!chaosActive())
        return;
    ChaosState& s = state();
    if (s.spec.kill_after < 0 ||
        completed_total <
            static_cast<std::uint64_t>(s.spec.kill_after))
        return;
    if (!s.killed.exchange(true, std::memory_order_relaxed)) {
        warn("chaos: kill-point reached after " +
             std::to_string(completed_total) +
             " tasks; requesting interrupt");
        requestInterrupt();
    }
}

void
chaosOnFleetUnitStart(int worker, std::uint64_t units_completed)
{
    if (!chaosActive())
        return;
    ChaosState& s = state();
    if (s.spec.fleet_exit_worker < 0 ||
        worker != static_cast<int>(s.spec.fleet_exit_worker))
        return;
    if (units_completed <
        static_cast<std::uint64_t>(std::max<std::int64_t>(
            0, s.spec.fleet_exit_after)))
        return;
    // A real crash, not a clean shutdown: no result line, no exit
    // handlers — the parent sees EOF mid-protocol and must requeue.
    warn("chaos: fleet worker " + std::to_string(worker) +
         " self-killing after " + std::to_string(units_completed) +
         " units");
    std::_Exit(kChaosFleetExitCode);
}

Status
chaosOnCheckpointWrite()
{
    if (!chaosActive())
        return {};
    ChaosState& s = state();
    int left = s.ckpt_fails_left.load(std::memory_order_relaxed);
    while (left > 0) {
        if (s.ckpt_fails_left.compare_exchange_weak(
                left, left - 1, std::memory_order_relaxed)) {
            return Status::ioError(
                "chaos: injected checkpoint write failure");
        }
    }
    return {};
}

} // namespace gpuecc::sim
