#include "sim/chaos.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/interrupt.hpp"
#include "common/log.hpp"

namespace gpuecc::sim {

namespace {

/** Armed spec plus live countdown counters. */
struct ChaosState
{
    ChaosSpec spec;
    std::atomic<int> task_faults_left{0};
    std::atomic<int> ckpt_fails_left{0};
    std::atomic<bool> killed{false};
    /** Remaining unit-targeted kills; <0 means unlimited (poison). */
    std::atomic<int> exit_unit_left{0};
    std::atomic<bool> stalled{false};
    /** Wire lines sent by this process so far (0-based index next). */
    std::atomic<std::int64_t> wire_lines{0};
    bool active = false;
};

ChaosState&
state()
{
    static ChaosState s;
    return s;
}

std::once_flag env_once;

/** First-use read of GPUECC_CHAOS (mirrors GPUECC_REFERENCE_CODEC). */
void
initFromEnvironment()
{
    std::call_once(env_once, [] {
        const char* env = std::getenv("GPUECC_CHAOS");
        if (env == nullptr || *env == '\0')
            return;
        Result<ChaosSpec> parsed = parseChaosSpec(env);
        if (!parsed.ok())
            fatal("GPUECC_CHAOS: " + parsed.status().toString());
        setChaosSpec(parsed.value());
        warn(std::string("chaos harness armed: GPUECC_CHAOS=") + env);
    });
}

Result<std::int64_t>
parseChaosInt(const std::string& key, const std::string& text)
{
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 0);
    if (text.empty() || errno == ERANGE ||
        end != text.c_str() + text.size()) {
        return Status::invalidArgument("chaos key '" + key +
                                       "': bad number '" + text + "'");
    }
    return static_cast<std::int64_t>(v);
}

} // namespace

Result<ChaosSpec>
parseChaosSpec(const std::string& text)
{
    ChaosSpec spec;
    std::size_t start = 0;
    while (start < text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? text.size() : comma;
        const std::string item = text.substr(start, end - start);
        start = end + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            return Status::invalidArgument(
                "chaos item '" + item + "' is not key=value");
        }
        const std::string key = item.substr(0, eq);
        Result<std::int64_t> value =
            parseChaosInt(key, item.substr(eq + 1));
        if (!value.ok())
            return value.status();
        if (key == "task_fault") {
            spec.task_fault = value.value();
        } else if (key == "task_fault_count") {
            spec.task_fault_count = static_cast<int>(value.value());
        } else if (key == "kill_after") {
            spec.kill_after = value.value();
        } else if (key == "ckpt_fail") {
            spec.ckpt_fail = static_cast<int>(value.value());
        } else if (key == "fleet_exit_worker") {
            spec.fleet_exit_worker = value.value();
        } else if (key == "fleet_exit_after") {
            spec.fleet_exit_after = value.value();
        } else if (key == "fleet_exit_unit") {
            spec.fleet_exit_unit = value.value();
        } else if (key == "fleet_exit_unit_count") {
            spec.fleet_exit_unit_count = static_cast<int>(value.value());
        } else if (key == "fleet_stall_worker") {
            spec.fleet_stall_worker = value.value();
        } else if (key == "fleet_stall_after") {
            spec.fleet_stall_after = value.value();
        } else if (key == "fleet_stall_unit") {
            spec.fleet_stall_unit = value.value();
        } else if (key == "net_drop") {
            spec.net_drop = value.value();
        } else if (key == "net_dup") {
            spec.net_dup = value.value();
        } else if (key == "net_trunc") {
            spec.net_trunc = value.value();
        } else if (key == "net_garble") {
            spec.net_garble = value.value();
        } else if (key == "net_delay") {
            spec.net_delay = value.value();
        } else if (key == "net_delay_ms") {
            spec.net_delay_ms = value.value();
        } else {
            return Status::invalidArgument("unknown chaos key '" + key +
                                           "'");
        }
    }
    return spec;
}

void
setChaosSpec(const ChaosSpec& spec)
{
    ChaosState& s = state();
    s.spec = spec;
    s.task_faults_left.store(
        spec.task_fault >= 0 ? spec.task_fault_count : 0,
        std::memory_order_relaxed);
    s.ckpt_fails_left.store(spec.ckpt_fail, std::memory_order_relaxed);
    s.killed.store(false, std::memory_order_relaxed);
    s.exit_unit_left.store(
        spec.fleet_exit_unit >= 0 ? spec.fleet_exit_unit_count : 0,
        std::memory_order_relaxed);
    s.stalled.store(false, std::memory_order_relaxed);
    s.wire_lines.store(0, std::memory_order_relaxed);
    s.active = true;
}

void
clearChaosSpec()
{
    setChaosSpec(ChaosSpec{});
    state().active = false;
}

bool
chaosActive()
{
    initFromEnvironment();
    return state().active;
}

void
chaosOnTaskAttempt(std::uint64_t plan_index)
{
    if (!chaosActive())
        return;
    ChaosState& s = state();
    if (s.spec.task_fault < 0 ||
        plan_index != static_cast<std::uint64_t>(s.spec.task_fault))
        return;
    // Decrement the budget; attempts beyond it succeed (the retry
    // path) so task_fault_count=1 models a transient fault and >=2 a
    // persistent one.
    int left = s.task_faults_left.load(std::memory_order_relaxed);
    while (left > 0) {
        if (s.task_faults_left.compare_exchange_weak(
                left, left - 1, std::memory_order_relaxed)) {
            throw ChaosTaskFault(
                "chaos: injected fault in shard task " +
                std::to_string(plan_index));
        }
    }
}

void
chaosOnTaskDone(std::uint64_t completed_total)
{
    if (!chaosActive())
        return;
    ChaosState& s = state();
    if (s.spec.kill_after < 0 ||
        completed_total <
            static_cast<std::uint64_t>(s.spec.kill_after))
        return;
    if (!s.killed.exchange(true, std::memory_order_relaxed)) {
        warn("chaos: kill-point reached after " +
             std::to_string(completed_total) +
             " tasks; requesting interrupt");
        requestInterrupt();
    }
}

namespace {

/** Park the calling thread forever: the silent-host scenario. */
[[noreturn]] void
chaosStallForever(const std::string& why)
{
    warn("chaos: " + why + "; stalling forever");
    state().stalled.store(true, std::memory_order_relaxed);
    for (;;)
        std::this_thread::sleep_for(std::chrono::seconds(3600));
}

} // namespace

void
chaosOnFleetUnitStart(int worker, std::uint64_t unit,
                      std::uint64_t units_completed)
{
    if (!chaosActive())
        return;
    ChaosState& s = state();
    if (s.spec.fleet_exit_unit >= 0 &&
        unit == static_cast<std::uint64_t>(s.spec.fleet_exit_unit)) {
        // Budget <0 = unlimited: the poison unit kills every host it
        // ever lands on. Otherwise decrement; starts past the budget
        // proceed normally (the requeue succeeds elsewhere).
        bool fire = s.spec.fleet_exit_unit_count < 0;
        if (!fire) {
            int left = s.exit_unit_left.load(std::memory_order_relaxed);
            while (left > 0 && !fire) {
                fire = s.exit_unit_left.compare_exchange_weak(
                    left, left - 1, std::memory_order_relaxed);
            }
        }
        if (fire) {
            warn("chaos: host self-killing on start of unit " +
                 std::to_string(unit));
            std::_Exit(kChaosFleetExitCode);
        }
    }
    if (s.spec.fleet_stall_unit >= 0 &&
        unit == static_cast<std::uint64_t>(s.spec.fleet_stall_unit)) {
        chaosStallForever("host hanging on start of unit " +
                          std::to_string(unit));
    }
    if (s.spec.fleet_stall_worker >= 0 &&
        worker == static_cast<int>(s.spec.fleet_stall_worker) &&
        units_completed >=
            static_cast<std::uint64_t>(std::max<std::int64_t>(
                0, s.spec.fleet_stall_after))) {
        chaosStallForever("fleet worker " + std::to_string(worker) +
                          " hanging after " +
                          std::to_string(units_completed) + " units");
    }
    if (s.spec.fleet_exit_worker < 0 ||
        worker != static_cast<int>(s.spec.fleet_exit_worker))
        return;
    if (units_completed <
        static_cast<std::uint64_t>(std::max<std::int64_t>(
            0, s.spec.fleet_exit_after)))
        return;
    // A real crash, not a clean shutdown: no result line, no exit
    // handlers — the parent sees EOF mid-protocol and must requeue.
    warn("chaos: fleet worker " + std::to_string(worker) +
         " self-killing after " + std::to_string(units_completed) +
         " units");
    std::_Exit(kChaosFleetExitCode);
}

bool
chaosStalled()
{
    return chaosActive() &&
           state().stalled.load(std::memory_order_relaxed);
}

WireLineFault
chaosOnWireLine()
{
    WireLineFault fault;
    if (!chaosActive())
        return fault;
    ChaosState& s = state();
    const ChaosSpec& spec = s.spec;
    if (spec.net_drop < 0 && spec.net_dup < 0 && spec.net_trunc < 0 &&
        spec.net_garble < 0 && spec.net_delay < 0)
        return fault;
    const std::int64_t line =
        s.wire_lines.fetch_add(1, std::memory_order_relaxed);
    fault.drop = line == spec.net_drop;
    fault.duplicate = line == spec.net_dup;
    fault.truncate = line == spec.net_trunc;
    fault.garble = line == spec.net_garble;
    if (line == spec.net_delay) {
        fault.delay_ms = static_cast<int>(std::clamp<std::int64_t>(
            spec.net_delay_ms, 0, 60 * 1000));
    }
    if (fault.drop || fault.duplicate || fault.truncate ||
        fault.garble || fault.delay_ms > 0) {
        warn("chaos: wire fault armed for line " +
             std::to_string(line));
    }
    return fault;
}

Status
chaosOnCheckpointWrite()
{
    if (!chaosActive())
        return {};
    ChaosState& s = state();
    int left = s.ckpt_fails_left.load(std::memory_order_relaxed);
    while (left > 0) {
        if (s.ckpt_fails_left.compare_exchange_weak(
                left, left - 1, std::memory_order_relaxed)) {
            return Status::ioError(
                "chaos: injected checkpoint write failure");
        }
    }
    return {};
}

} // namespace gpuecc::sim
