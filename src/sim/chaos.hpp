/**
 * @file
 * Deterministic chaos / failure injection for the campaign engine.
 *
 * The resilience machinery (checkpoint/resume, shard retry, graceful
 * scheme skip) is only trustworthy if its failure paths are exercised,
 * so the runner and the checkpoint writer call tiny hooks that are
 * no-ops in production and inject faults when armed — either
 * programmatically (tests) or via the GPUECC_CHAOS environment
 * variable (CI):
 *
 *   GPUECC_CHAOS="task_fault=7,task_fault_count=2,kill_after=40,ckpt_fail=1"
 *
 *   task_fault=I        throw from shard task with plan index I
 *   task_fault_count=N  fail the first N attempts of that task
 *                       (default 1: the retry succeeds)
 *   kill_after=N        request a clean interrupt once N tasks have
 *                       completed (a simulated SIGTERM)
 *   ckpt_fail=N         fail the next N checkpoint writes
 *   fleet_exit_worker=W fleet worker index W self-kills (_exit) ...
 *   fleet_exit_after=N  ... when it starts its (N+1)-th work unit
 *                       (default 0: dies on its first unit)
 *   fleet_exit_unit=U   any worker/agent self-kills when it starts
 *                       work unit U ...
 *   fleet_exit_unit_count=N
 *                       ... for the first N starts in this process
 *                       (default 1: the requeue lands elsewhere;
 *                       -1: every host the unit touches dies — the
 *                       poison-unit scenario)
 *   fleet_stall_worker=W / fleet_stall_after=N
 *                       like fleet_exit_worker/after, but the worker
 *                       hangs forever (heartbeats stop) instead of
 *                       dying — the silent-host scenario
 *   fleet_stall_unit=U  any worker/agent hangs when it starts unit U
 *   net_drop=G          drop the G-th wire line this process sends
 *   net_dup=G           send the G-th wire line twice
 *   net_trunc=G         send only the first half of the G-th line
 *                       (no terminator: the receiver's framing breaks)
 *   net_garble=G        flip bits in the G-th line's payload
 *   net_delay=G         sleep net_delay_ms (default 100) before
 *                       sending the G-th line
 *
 * All triggers count events, never wall-clock or randomness, so a
 * chaos scenario reproduces exactly. The net_* counters count wire
 * lines sent by *this process* through the chaos-aware socket write
 * path (0-based), so a scenario is armed on the side whose traffic
 * it should corrupt.
 */

#ifndef GPUECC_SIM_CHAOS_HPP
#define GPUECC_SIM_CHAOS_HPP

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/status.hpp"

namespace gpuecc::sim {

/** Which faults to inject; the default injects nothing. */
struct ChaosSpec
{
    /** Plan index of the shard task to throw from; -1 = never. */
    std::int64_t task_fault = -1;
    /** Number of attempts of that task to fail (1 = retry succeeds). */
    int task_fault_count = 1;
    /** Completed-task count that triggers an interrupt; -1 = never. */
    std::int64_t kill_after = -1;
    /** Number of upcoming checkpoint writes to fail. */
    int ckpt_fail = 0;
    /** Fleet worker index that self-kills mid-run; -1 = never. */
    std::int64_t fleet_exit_worker = -1;
    /** Units that worker completes before dying on the next one. */
    std::int64_t fleet_exit_after = 0;
    /** Work unit whose start kills its host; -1 = never. */
    std::int64_t fleet_exit_unit = -1;
    /** Starts of that unit (per process) that die; -1 = all of them. */
    int fleet_exit_unit_count = 1;
    /** Fleet worker index that hangs (silently) mid-run; -1 = never. */
    std::int64_t fleet_stall_worker = -1;
    /** Units that worker completes before hanging on the next one. */
    std::int64_t fleet_stall_after = 0;
    /** Work unit whose start hangs its host; -1 = never. */
    std::int64_t fleet_stall_unit = -1;
    /** Wire-line index (per process, 0-based) to drop; -1 = never. */
    std::int64_t net_drop = -1;
    /** Wire-line index to send twice; -1 = never. */
    std::int64_t net_dup = -1;
    /** Wire-line index to truncate to its first half; -1 = never. */
    std::int64_t net_trunc = -1;
    /** Wire-line index whose payload bits get flipped; -1 = never. */
    std::int64_t net_garble = -1;
    /** Wire-line index to delay before sending; -1 = never. */
    std::int64_t net_delay = -1;
    /** Delay applied at the net_delay trigger (milliseconds). */
    std::int64_t net_delay_ms = 100;
};

/** The exception an armed task_fault raises inside a shard task. */
class ChaosTaskFault : public std::runtime_error
{
  public:
    explicit ChaosTaskFault(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/**
 * Parse a GPUECC_CHAOS-style "key=value,key=value" spec. Unknown keys
 * and non-numeric values are invalidArgument errors.
 */
Result<ChaosSpec> parseChaosSpec(const std::string& text);

/** Arm the harness (resets all trigger counters). */
void setChaosSpec(const ChaosSpec& spec);

/** Disarm the harness (tests; also resets counters). */
void clearChaosSpec();

/**
 * Whether any fault is armed. The first call reads GPUECC_CHAOS from
 * the environment (fatal if it doesn't parse — a user error).
 */
bool chaosActive();

/**
 * Runner hook: called before evaluating the shard task with the given
 * plan index. Throws ChaosTaskFault while that task's failure budget
 * lasts.
 */
void chaosOnTaskAttempt(std::uint64_t plan_index);

/**
 * Runner hook: called after each task completes with the completed
 * total so far; requests a clean interrupt at the kill-point.
 */
void chaosOnTaskDone(std::uint64_t completed_total);

/**
 * Checkpoint hook: ok in production; an ioError while the armed
 * ckpt_fail budget lasts.
 */
Status chaosOnCheckpointWrite();

/** Exit code of a chaos-killed fleet worker (looks like a crash). */
constexpr int kChaosFleetExitCode = 77;

/**
 * Fleet worker hook: called when worker @p worker starts work unit
 * @p unit, with the number of units it completed before this one.
 * _exit()s the process (simulating a mid-campaign worker crash — no
 * result, no cleanup) when an armed exit trigger matches: either
 * (fleet_exit_worker, fleet_exit_after) targeting a worker index, or
 * (fleet_exit_unit, fleet_exit_unit_count) targeting the unit itself
 * — the latter is how a poison unit "kills every worker it lands on".
 * An armed stall trigger (fleet_stall_worker/after, fleet_stall_unit)
 * instead parks the calling thread forever after raising the stalled
 * flag (chaosStalled), simulating a hung-but-alive host whose
 * heartbeats go silent. Forked workers and agents inherit the
 * parent's armed spec, so tests arm it in-process before forking.
 */
void chaosOnFleetUnitStart(int worker, std::uint64_t unit,
                           std::uint64_t units_completed);

/**
 * Whether a stall trigger has fired in this process. Heartbeat
 * threads poll it so a chaos-stalled host goes silent on the wire,
 * not just idle.
 */
bool chaosStalled();

/** What chaosOnWireLine asks the sender to do with one line. */
struct WireLineFault
{
    bool drop = false;      //!< do not send the line at all
    bool duplicate = false; //!< send the line twice
    bool truncate = false;  //!< send only the first half, no '\n'
    bool garble = false;    //!< flip bits in the payload bytes
    int delay_ms = 0;       //!< sleep this long before sending
};

/**
 * Network chaos hook: called by the socket wire-write path once per
 * line, counting lines sent by this process. Returns the fault (if
 * any) armed for this line index. The default-constructed result
 * means "send faithfully".
 */
WireLineFault chaosOnWireLine();

} // namespace gpuecc::sim

#endif // GPUECC_SIM_CHAOS_HPP
