/**
 * @file
 * Deterministic chaos / failure injection for the campaign engine.
 *
 * The resilience machinery (checkpoint/resume, shard retry, graceful
 * scheme skip) is only trustworthy if its failure paths are exercised,
 * so the runner and the checkpoint writer call tiny hooks that are
 * no-ops in production and inject faults when armed — either
 * programmatically (tests) or via the GPUECC_CHAOS environment
 * variable (CI):
 *
 *   GPUECC_CHAOS="task_fault=7,task_fault_count=2,kill_after=40,ckpt_fail=1"
 *
 *   task_fault=I        throw from shard task with plan index I
 *   task_fault_count=N  fail the first N attempts of that task
 *                       (default 1: the retry succeeds)
 *   kill_after=N        request a clean interrupt once N tasks have
 *                       completed (a simulated SIGTERM)
 *   ckpt_fail=N         fail the next N checkpoint writes
 *   fleet_exit_worker=W fleet worker index W self-kills (_exit) ...
 *   fleet_exit_after=N  ... when it starts its (N+1)-th work unit
 *                       (default 0: dies on its first unit)
 *
 * All triggers count events, never wall-clock or randomness, so a
 * chaos scenario reproduces exactly.
 */

#ifndef GPUECC_SIM_CHAOS_HPP
#define GPUECC_SIM_CHAOS_HPP

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/status.hpp"

namespace gpuecc::sim {

/** Which faults to inject; the default injects nothing. */
struct ChaosSpec
{
    /** Plan index of the shard task to throw from; -1 = never. */
    std::int64_t task_fault = -1;
    /** Number of attempts of that task to fail (1 = retry succeeds). */
    int task_fault_count = 1;
    /** Completed-task count that triggers an interrupt; -1 = never. */
    std::int64_t kill_after = -1;
    /** Number of upcoming checkpoint writes to fail. */
    int ckpt_fail = 0;
    /** Fleet worker index that self-kills mid-run; -1 = never. */
    std::int64_t fleet_exit_worker = -1;
    /** Units that worker completes before dying on the next one. */
    std::int64_t fleet_exit_after = 0;
};

/** The exception an armed task_fault raises inside a shard task. */
class ChaosTaskFault : public std::runtime_error
{
  public:
    explicit ChaosTaskFault(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/**
 * Parse a GPUECC_CHAOS-style "key=value,key=value" spec. Unknown keys
 * and non-numeric values are invalidArgument errors.
 */
Result<ChaosSpec> parseChaosSpec(const std::string& text);

/** Arm the harness (resets all trigger counters). */
void setChaosSpec(const ChaosSpec& spec);

/** Disarm the harness (tests; also resets counters). */
void clearChaosSpec();

/**
 * Whether any fault is armed. The first call reads GPUECC_CHAOS from
 * the environment (fatal if it doesn't parse — a user error).
 */
bool chaosActive();

/**
 * Runner hook: called before evaluating the shard task with the given
 * plan index. Throws ChaosTaskFault while that task's failure budget
 * lasts.
 */
void chaosOnTaskAttempt(std::uint64_t plan_index);

/**
 * Runner hook: called after each task completes with the completed
 * total so far; requests a clean interrupt at the kill-point.
 */
void chaosOnTaskDone(std::uint64_t completed_total);

/**
 * Checkpoint hook: ok in production; an ioError while the armed
 * ckpt_fail budget lasts.
 */
Status chaosOnCheckpointWrite();

/** Exit code of a chaos-killed fleet worker (looks like a crash). */
constexpr int kChaosFleetExitCode = 77;

/**
 * Fleet worker hook: called when worker @p worker starts a work unit,
 * with the number of units it completed before this one. _exit()s the
 * process (simulating a mid-campaign worker crash — no result, no
 * cleanup) when the armed (fleet_exit_worker, fleet_exit_after)
 * trigger matches. Forked workers inherit the parent's armed spec,
 * so tests arm it in-process before the campaign forks.
 */
void chaosOnFleetUnitStart(int worker, std::uint64_t units_completed);

} // namespace gpuecc::sim

#endif // GPUECC_SIM_CHAOS_HPP
