#include "sim/json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace gpuecc::sim {

Result<bool>
JsonValue::asBool() const
{
    if (!isBool())
        return Status::dataLoss("JSON value is not a boolean");
    return bool_;
}

Result<std::uint64_t>
JsonValue::asUint64() const
{
    if (!isNumber())
        return Status::dataLoss("JSON value is not a number");
    if (scalar_.find_first_of(".eE") != std::string::npos)
        return Status::dataLoss("JSON number " + scalar_ +
                                " is not an integer");
    if (!scalar_.empty() && scalar_[0] == '-')
        return Status::dataLoss("JSON number " + scalar_ +
                                " is negative");
    errno = 0;
    char* end = nullptr;
    const unsigned long long v =
        std::strtoull(scalar_.c_str(), &end, 10);
    if (errno == ERANGE || end != scalar_.c_str() + scalar_.size())
        return Status::dataLoss("JSON number " + scalar_ +
                                " overflows 64 bits");
    return static_cast<std::uint64_t>(v);
}

Result<double>
JsonValue::asDouble() const
{
    if (!isNumber())
        return Status::dataLoss("JSON value is not a number");
    return std::strtod(scalar_.c_str(), nullptr);
}

Result<std::string>
JsonValue::asString() const
{
    if (!isString())
        return Status::dataLoss("JSON value is not a string");
    return scalar_;
}

const JsonValue*
JsonValue::find(const std::string& key) const
{
    for (const auto& [k, v] : members_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

Result<const JsonValue*>
JsonValue::get(const std::string& key) const
{
    const JsonValue* v = find(key);
    if (v == nullptr)
        return Status::dataLoss("JSON object has no member \"" + key +
                                '"');
    return v;
}

namespace {

constexpr int kMaxDepth = 64;

} // namespace

/** Recursive-descent parser over one in-memory document. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    Result<JsonValue> parse()
    {
        JsonValue root;
        Status s = parseValue(root, 0);
        if (!s.ok())
            return s;
        skipSpace();
        if (pos_ != text_.size())
            return error("trailing characters after the document");
        return root;
    }

  private:
    Status error(const std::string& what) const
    {
        return Status::dataLoss("JSON parse error at byte " +
                                std::to_string(pos_) + ": " + what);
    }

    void skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    Status expectLiteral(const char* word)
    {
        for (const char* p = word; *p != '\0'; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                return error(std::string("expected '") + word + "'");
            ++pos_;
        }
        return {};
    }

    Status parseValue(JsonValue& out, int depth)
    {
        if (depth > kMaxDepth)
            return error("nesting deeper than 64 levels");
        skipSpace();
        if (pos_ >= text_.size())
            return error("unexpected end of document");
        switch (text_[pos_]) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"':
            out.kind_ = JsonValue::Kind::string;
            return parseString(out.scalar_);
          case 't':
            out.kind_ = JsonValue::Kind::boolean;
            out.bool_ = true;
            return expectLiteral("true");
          case 'f':
            out.kind_ = JsonValue::Kind::boolean;
            out.bool_ = false;
            return expectLiteral("false");
          case 'n':
            out.kind_ = JsonValue::Kind::null;
            return expectLiteral("null");
          default:
            return parseNumber(out);
        }
    }

    Status parseObject(JsonValue& out, int depth)
    {
        out.kind_ = JsonValue::Kind::object;
        ++pos_; // '{'
        skipSpace();
        if (consume('}'))
            return {};
        for (;;) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return error("expected an object key string");
            std::string key;
            if (Status s = parseString(key); !s.ok())
                return s;
            skipSpace();
            if (!consume(':'))
                return error("expected ':' after object key");
            JsonValue value;
            if (Status s = parseValue(value, depth + 1); !s.ok())
                return s;
            out.members_.emplace_back(std::move(key),
                                      std::move(value));
            skipSpace();
            if (consume(','))
                continue;
            if (consume('}'))
                return {};
            return error("expected ',' or '}' in object");
        }
    }

    Status parseArray(JsonValue& out, int depth)
    {
        out.kind_ = JsonValue::Kind::array;
        ++pos_; // '['
        skipSpace();
        if (consume(']'))
            return {};
        for (;;) {
            JsonValue value;
            if (Status s = parseValue(value, depth + 1); !s.ok())
                return s;
            out.elements_.push_back(std::move(value));
            skipSpace();
            if (consume(','))
                continue;
            if (consume(']'))
                return {};
            return error("expected ',' or ']' in array");
        }
    }

    Status parseHex4(unsigned& out)
    {
        out = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size())
                return error("truncated \\u escape");
            const char c = text_[pos_++];
            unsigned digit;
            if (c >= '0' && c <= '9') {
                digit = static_cast<unsigned>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                digit = static_cast<unsigned>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                digit = static_cast<unsigned>(c - 'A' + 10);
            } else {
                return error("bad hex digit in \\u escape");
            }
            out = out * 16 + digit;
        }
        return {};
    }

    static void appendUtf8(std::string& s, unsigned cp)
    {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xC0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            s += static_cast<char>(0xE0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            s += static_cast<char>(0xF0 | (cp >> 18));
            s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    Status parseString(std::string& out)
    {
        ++pos_; // '"'
        for (;;) {
            if (pos_ >= text_.size())
                return error("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return {};
            if (static_cast<unsigned char>(c) < 0x20)
                return error("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return error("truncated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned cp;
                if (Status s = parseHex4(cp); !s.ok())
                    return s;
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: a \uXXXX low half must follow.
                    if (!consume('\\') || !consume('u'))
                        return error("unpaired high surrogate");
                    unsigned lo;
                    if (Status s = parseHex4(lo); !s.ok())
                        return s;
                    if (lo < 0xDC00 || lo > 0xDFFF)
                        return error("bad low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) +
                         (lo - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    return error("unpaired low surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return error("unknown escape");
            }
        }
    }

    Status parseNumber(JsonValue& out)
    {
        const std::size_t start = pos_;
        if (consume('-')) {
        }
        if (pos_ >= text_.size() || !std::isdigit(
                static_cast<unsigned char>(text_[pos_])))
            return error("expected a value");
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (consume('.')) {
            if (pos_ >= text_.size() || !std::isdigit(
                    static_cast<unsigned char>(text_[pos_])))
                return error("expected digits after '.'");
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() || !std::isdigit(
                    static_cast<unsigned char>(text_[pos_])))
                return error("expected digits in exponent");
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        out.kind_ = JsonValue::Kind::number;
        out.scalar_ = text_.substr(start, pos_ - start);
        return {};
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

Result<JsonValue>
parseJson(const std::string& text)
{
    return JsonParser(text).parse();
}

} // namespace gpuecc::sim
