/**
 * @file
 * Atomic campaign checkpoints: crash-tolerant progress persistence.
 *
 * A campaign's work plan is a fixed, deterministic list of shard
 * tasks, and every task's tallies depend only on (spec, task index) —
 * so persisting the set of completed tasks with their tallies is
 * enough to resume an interrupted run with bit-identical final
 * counts. The checkpoint is a JSON sidecar written atomically
 * (write-to-temp + rename) so a crash mid-write can never corrupt a
 * previously valid file; a fingerprint of everything the plan depends
 * on (schemes, patterns, samples, seed, chunk, codec backend, task
 * count) guards against resuming into a different campaign.
 */

#ifndef GPUECC_SIM_CHECKPOINT_HPP
#define GPUECC_SIM_CHECKPOINT_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "faultsim/evaluator.hpp"
#include "faultsim/patterns.hpp"

namespace gpuecc::sim {

class JsonWriter;
class JsonValue;

/** One completed shard task: its plan index and merged tallies. */
struct CheckpointEntry
{
    std::uint64_t task = 0;
    OutcomeCounts counts;
};

/** Everything a resume needs: plan identity + completed tasks. */
struct CampaignCheckpoint
{
    std::string fingerprint;
    std::vector<CheckpointEntry> done;
    /**
     * Provenance key/value pairs (threads, codec backend, build,
     * chaos config) written as a "manifest" object — informational
     * only: resume ignores it for validation (the fingerprint is the
     * authority), and checkpoints without one load fine.
     */
    std::vector<std::pair<std::string, std::string>> manifest;
};

/**
 * Identity of a campaign plan, as a readable string. Two campaigns
 * with equal fingerprints have identical task lists and identical
 * per-task tallies; anything that changes the plan or the draws
 * (schemes, patterns, samples, seed, chunk, codec backend) changes
 * the fingerprint. The thread count itself is deliberately absent —
 * tallies are thread-invariant, so a campaign may resume on
 * different cores as long as the *effective* chunk (which the runner
 * passes here, and which a small sample budget can tie to the worker
 * count via effectiveShardChunk) comes out the same; when it
 * doesn't, the task indexing differs and the mismatch is surfaced as
 * a fingerprint error instead of a silent mis-restore.
 */
std::string campaignFingerprint(
    const std::vector<std::string>& scheme_ids,
    const std::vector<ErrorPattern>& patterns, std::uint64_t samples,
    std::uint64_t seed, std::uint64_t chunk,
    const std::string& codec_backend, std::uint64_t task_count);

/**
 * Serialize a checkpoint as the next JSON value of @p w (the
 * complete document saveCheckpoint persists). Exposed because the
 * fleet protocol reuses the checkpoint document as its work-unit
 * result wire format — one serialization, one validator, whether
 * the tallies travel through a file or a pipe.
 */
void writeCheckpointJson(JsonWriter& w,
                         const CampaignCheckpoint& checkpoint);

/**
 * Parse and structurally validate a checkpoint document (the read
 * side of writeCheckpointJson); @p label names the source in error
 * messages (a path, or "worker 3 result"). Same validation as
 * loadCheckpoint: version, counter widths, per-entry consistency,
 * duplicate task indices.
 */
Result<CampaignCheckpoint>
checkpointFromJson(const JsonValue& root, const std::string& label);

/**
 * Write a checkpoint atomically AND durably: serialize to
 * `path`.tmp, fsync the temp file, rename over `path`, then fsync
 * the containing directory — without the directory sync a crash
 * right after the rename could still lose the new name from the
 * directory itself. On any failure (including an injected chaos
 * fault) the previous checkpoint at `path` is left untouched.
 */
Status saveCheckpoint(const std::string& path,
                      const CampaignCheckpoint& checkpoint);

/**
 * Load and structurally validate a checkpoint: notFound when the
 * file doesn't exist, dataLoss when it doesn't parse, has the wrong
 * version, holds counters that overflow 64 bits or don't sum
 * (trials == dce + due + sdc), or repeats a task index. Plan-level
 * validation (index range, per-task trial widths) happens in the
 * runner, which knows the task list.
 */
Result<CampaignCheckpoint> loadCheckpoint(const std::string& path);

} // namespace gpuecc::sim

#endif // GPUECC_SIM_CHECKPOINT_HPP
