/**
 * @file
 * Parallel deterministic fault-injection campaign engine.
 *
 * A campaign evaluates a set of ECC organizations against a set of
 * Table 1 error patterns at a given sample budget. The runner shards
 * every (scheme, pattern) cell with the faultsim shard kernel, runs
 * the shards on a work-stealing thread pool, and merges the tallies
 * in plan order — so the per-cell counts are bit-identical for any
 * thread count (one split RNG stream per shard), while the wall-clock
 * scales with cores. This is the engine all evaluation benches and
 * examples share instead of hand-rolled scheme × pattern loops.
 */

#ifndef GPUECC_SIM_CAMPAIGN_HPP
#define GPUECC_SIM_CAMPAIGN_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "faultsim/evaluator.hpp"
#include "faultsim/patterns.hpp"

namespace gpuecc::sim {

/** What to run: schemes × patterns × samples, under one seed. */
struct CampaignSpec
{
    /** Registry ids of the organizations under test. */
    std::vector<std::string> scheme_ids;
    /** Patterns to evaluate; empty means all seven Table 1 rows. */
    std::vector<ErrorPattern> patterns;
    /** Monte Carlo samples for non-enumerable patterns. */
    std::uint64_t samples = 200000;
    /** Campaign seed; results are deterministic per seed. */
    std::uint64_t seed = 0x5EED;
    /** Worker threads; 0 selects one per hardware thread. */
    int threads = 1;
    /** Samples per shard of a sampled pattern. */
    std::uint64_t chunk = 1 << 16;

    /** The patterns to run (resolving the empty-means-all default). */
    std::vector<ErrorPattern> resolvedPatterns() const;
};

/** Merged tallies of one (scheme, pattern) cell. */
struct CampaignCell
{
    std::string scheme_id;
    ErrorPattern pattern;
    OutcomeCounts counts;
};

/** Everything a campaign produced, plus run statistics. */
struct CampaignResult
{
    /** The spec as run (threads resolved to a concrete count). */
    CampaignSpec spec;
    /** Codec backend the run decoded with ("compiled"/"reference"). */
    std::string codec_backend;
    /** Scheme-major, pattern-minor, in spec order. */
    std::vector<CampaignCell> cells;
    /** Wall-clock of the sharded evaluation phase. */
    double seconds = 0.0;
    /** Number of shards the plan contained. */
    std::uint64_t shards = 0;

    /** Total injected trials across all cells. */
    std::uint64_t totalTrials() const;

    /** Injection throughput (trials per wall-clock second). */
    double trialsPerSecond() const;

    /** Tallies of one cell; fatal if the campaign didn't run it. */
    const OutcomeCounts& counts(const std::string& scheme_id,
                                ErrorPattern pattern) const;

    /**
     * Per-pattern map for one scheme, in the shape weightedOutcome
     * consumes.
     */
    std::map<ErrorPattern, OutcomeCounts>
    perPattern(const std::string& scheme_id) const;
};

/** Executes campaigns; owns nothing between runs. */
class CampaignRunner
{
  public:
    explicit CampaignRunner(CampaignSpec spec);

    /** Run the campaign; safe to call repeatedly (same result). */
    CampaignResult run() const;

  private:
    CampaignSpec spec_;
};

} // namespace gpuecc::sim

#endif // GPUECC_SIM_CAMPAIGN_HPP
