/**
 * @file
 * Parallel deterministic fault-injection campaign engine.
 *
 * A campaign evaluates a set of ECC organizations against a set of
 * Table 1 error patterns at a given sample budget. The runner shards
 * every (scheme, pattern) cell with the faultsim shard kernel, runs
 * the shards on a work-stealing thread pool, and merges the tallies
 * in plan order — so the per-cell counts are bit-identical for any
 * thread count (one split RNG stream per shard), while the wall-clock
 * scales with cores. This is the engine all evaluation benches and
 * examples share instead of hand-rolled scheme × pattern loops.
 *
 * The runner is crash-tolerant: with a checkpoint path set it
 * persists completed shard tallies atomically (sim/checkpoint.hpp),
 * stops cleanly on SIGINT/SIGTERM after flushing a final checkpoint,
 * resumes bit-identically from a prior checkpoint, retries a failing
 * shard task once, and skips (rather than dies on) schemes that fail
 * to construct or to evaluate — recording every degradation in the
 * result. The failure paths are exercised by the chaos harness
 * (sim/chaos.hpp).
 */

#ifndef GPUECC_SIM_CAMPAIGN_HPP
#define GPUECC_SIM_CAMPAIGN_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "faultsim/evaluator.hpp"
#include "faultsim/patterns.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"

namespace gpuecc::sim {

/** What to run: schemes × patterns × samples, under one seed. */
struct CampaignSpec
{
    /** Registry ids of the organizations under test. */
    std::vector<std::string> scheme_ids;
    /** Patterns to evaluate; empty means all seven Table 1 rows. */
    std::vector<ErrorPattern> patterns;
    /** Monte Carlo samples for non-enumerable patterns. */
    std::uint64_t samples = 200000;
    /** Campaign seed; results are deterministic per seed. */
    std::uint64_t seed = 0x5EED;
    /** Worker threads; 0 selects one per hardware thread. */
    int threads = 1;
    /**
     * Samples per shard of a sampled pattern. The runner may shrink
     * this (block-aligned) so every worker gets at least one shard —
     * see effectiveShardChunk; tallies are chunk-invariant either
     * way, so reports are unaffected.
     */
    std::uint64_t chunk = 1 << 16;
    /**
     * Pin worker i to hardware thread i (mod core count). A placement
     * hint only: tallies and CSV reports are byte-identical with and
     * without it, and it degrades to a recorded no-op on platforms
     * without affinity support.
     */
    bool affinity = false;

    /**
     * Fleet mode: number of worker *processes* to fork and dispatch
     * work units to over pipes (src/fleet). 0 (the default) runs the
     * campaign in-process on the thread pool. Tallies and the CSV
     * report are bit-identical either way — fleet mode only changes
     * who evaluates each shard, never what is drawn. Requires a
     * platform with fork/pipe; elsewhere tryRun reports unavailable.
     */
    int fleet_workers = 0;
    /**
     * Shard tasks per fleet work unit — the dispatch granularity.
     * Larger units amortize pipe round-trips; smaller units balance
     * better and lose less to a killed worker (a lost worker's
     * in-flight unit is re-queued whole).
     */
    std::uint64_t fleet_unit_shards = 4;

    /**
     * Fleet service mode: a "host:port" address to listen on for
     * remote worker agents (tools/fleet_agent); empty (the default)
     * disables the socket service. Port 0 binds an ephemeral port
     * (tests read it back). In service mode fleet_workers is the
     * *local standby* worker count — forked but left idle, engaged
     * only if every remote agent is lost (and with 0 of them the
     * service degrades all the way to in-process execution).
     */
    std::string fleet_listen;
    /**
     * Shared secret for the agent handshake. Both sides prove
     * possession with an HMAC over a per-connection server nonce
     * before any plan data moves; the secret itself never travels.
     * Required (non-empty) in service mode.
     */
    std::string fleet_secret;
    /**
     * Seconds a dispatched unit may stay in flight before its host is
     * declared hung — the host is retired (killed, for a local
     * worker) and the unit requeued. 0 (the default) disables the
     * deadline: a unit's evaluation time is spec-dependent and the
     * caller knows the scale. Applies to both pipe and socket
     * transports.
     */
    double fleet_worker_timeout_s = 0.0;
    /**
     * Seconds of wire silence (no result, no heartbeat) before the
     * service declares a remote agent dead and requeues its in-flight
     * unit. Agents beat at a quarter of this interval.
     */
    double fleet_heartbeat_timeout_s = 10.0;
    /**
     * Seconds the service keeps work parked for remote agents while
     * none is connected before degrading: engage the local standby
     * workers, or — with none configured — finish in-process.
     */
    double fleet_grace_s = 30.0;
    /**
     * Dispatch attempts per unit before it is declared poison and
     * retired (its cell fails, the fleet survives). Minimum 1.
     */
    int fleet_max_unit_attempts = 3;

    /**
     * Live observability endpoint ("HOST:PORT"; empty disables).
     * Fleet modes serve read-only Prometheus text at /metrics and
     * campaign status JSON at /status on this address, safe to curl
     * mid-campaign without perturbing determinism.
     */
    std::string obs_listen;
    /**
     * Append-only NDJSON event journal path; empty disables. Every
     * fleet lifecycle event (connect, dispatch, result, requeue,
     * poison, fallback, drain, ...) is written through with the
     * checkpoint's fsync discipline for post-mortem replay via
     * tools/fleet_journal.
     */
    std::string journal_path;

    /**
     * Checkpoint sidecar path; empty disables checkpointing. When
     * set, completed shard tallies are flushed atomically to this
     * file on an interval and on SIGINT/SIGTERM, and the final
     * (complete) state is written on success.
     */
    std::string checkpoint_path;
    /**
     * Resume from checkpoint_path: completed shard tasks recorded
     * there are restored instead of re-evaluated, and the final
     * tallies are bit-identical to an uninterrupted run. A missing
     * checkpoint file starts fresh; a checkpoint from a different
     * campaign (fingerprint mismatch) is an error.
     */
    bool resume = false;
    /** Minimum seconds between periodic flushes (<= 0: every task). */
    double checkpoint_interval_s = 30.0;

    /**
     * Live progress line on stderr. Off by default so library users
     * and tests stay silent; the campaign CLI maps --progress/--quiet
     * onto this (auto-enabling on a TTY). Progress reporting reads
     * atomic completion counters only — it never perturbs tallies.
     */
    obs::ProgressMode progress = obs::ProgressMode::off;

    /** The patterns to run (resolving the empty-means-all default). */
    std::vector<ErrorPattern> resolvedPatterns() const;
};

/** One non-fatal failure the campaign degraded around. */
struct CampaignError
{
    /** Scheme the failure belongs to (empty for campaign-level). */
    std::string scheme_id;
    /** Structured description, e.g. "not_found: unknown ECC ...". */
    std::string message;
};

/** Merged tallies of one (scheme, pattern) cell. */
struct CampaignCell
{
    std::string scheme_id;
    ErrorPattern pattern;
    OutcomeCounts counts;
};

/** Everything a campaign produced, plus run statistics. */
struct CampaignResult
{
    /** The spec as run (threads resolved to a concrete count). */
    CampaignSpec spec;
    /** Codec backend the run decoded with ("compiled"/"reference"). */
    std::string codec_backend;
    /** Scheme-major, pattern-minor, in spec order. */
    std::vector<CampaignCell> cells;
    /** Wall-clock of the sharded evaluation phase. */
    double seconds = 0.0;
    /** Process CPU seconds consumed by the evaluation phase. */
    double cpu_seconds = 0.0;
    /** Thread-pool utilization over the evaluation phase. */
    obs::PoolTelemetry pool;
    /** Per-scheme time/volume breakdown, in evaluated-spec order. */
    std::vector<obs::SchemeTiming> scheme_timings;
    /** Fleet execution telemetry (workers == 0 for in-process). */
    obs::FleetTelemetry fleet;
    /** Deltas of the campaign.* metrics recorded by this run. */
    obs::MetricsSnapshot metrics;
    /** Number of shards the plan contained. */
    std::uint64_t shards = 0;
    /** Shard tasks restored from a checkpoint instead of evaluated. */
    std::uint64_t resumed_shards = 0;
    /**
     * True when SIGINT/SIGTERM (or a chaos kill-point) stopped the
     * run early; the cells then hold partial tallies and a final
     * checkpoint has been flushed for --resume.
     */
    bool interrupted = false;
    /**
     * Schemes the campaign skipped (failed lookup or persistent
     * shard failure) — graceful degradation, recorded per scheme.
     */
    std::vector<CampaignError> errors;

    /** Total injected trials across all cells. */
    std::uint64_t totalTrials() const;

    /** Whether the result holds cells for this scheme. */
    bool hasScheme(const std::string& scheme_id) const;

    /** Injection throughput (trials per wall-clock second). */
    double trialsPerSecond() const;

    /** Tallies of one cell; fatal if the campaign didn't run it. */
    const OutcomeCounts& counts(const std::string& scheme_id,
                                ErrorPattern pattern) const;

    /**
     * Per-pattern map for one scheme, in the shape weightedOutcome
     * consumes.
     */
    std::map<ErrorPattern, OutcomeCounts>
    perPattern(const std::string& scheme_id) const;
};

/** Executes campaigns; owns nothing between runs. */
class CampaignRunner
{
  public:
    explicit CampaignRunner(CampaignSpec spec);

    /** Run the campaign; safe to call repeatedly (same result). */
    CampaignResult run() const;

    /**
     * Run the campaign, reporting unrecoverable setup problems (no
     * usable scheme, a corrupt or mismatched resume checkpoint) as a
     * structured error instead of exiting. Recoverable failures —
     * one bad scheme among several, a failing checkpoint write, an
     * interrupt — degrade gracefully inside the result (errors /
     * interrupted fields). run() is this plus fatal() on error.
     */
    Result<CampaignResult> tryRun() const;

  private:
    CampaignSpec spec_;
};

} // namespace gpuecc::sim

#endif // GPUECC_SIM_CAMPAIGN_HPP
