/**
 * @file
 * POSIX child-process and pipe helpers for the fleet dispatcher.
 *
 * The fleet execution mode forks one worker process per requested
 * worker and talks newline-delimited JSON over a pipe pair. These
 * helpers wrap the raw fork/pipe/waitpid surface with Status-based
 * errors so the dispatcher can degrade gracefully (a dead worker is
 * a requeued work unit, not a crashed campaign): EINTR is retried,
 * EPIPE/EOF surface as structured errors, and SIGPIPE is disabled so
 * a write to a dead worker's pipe fails instead of killing the
 * parent. On non-POSIX platforms every entry point reports
 * unavailable, which the campaign runner maps to "fleet mode not
 * supported here".
 */

#ifndef GPUECC_COMMON_SUBPROCESS_HPP
#define GPUECC_COMMON_SUBPROCESS_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace gpuecc {

/** Whether this build can fork worker processes (POSIX only). */
bool subprocessSupported();

/**
 * Turn SIGPIPE off process-wide (idempotent). Call before writing to
 * pipes whose reader may die: the write then fails with an ioError
 * instead of terminating the process.
 */
void ignoreSigpipe();

/** One forked worker and the parent's ends of its pipes. */
struct ChildProcess
{
    std::int64_t pid = -1;
    /** Parent writes work units here (child's stdin side). */
    int to_child = -1;
    /** Parent reads results here (child's stdout side). */
    int from_child = -1;
};

/**
 * Fork a child that runs child_main(read_fd, write_fd) and _exit()s
 * with its return value. The child closes every fd listed in
 * inherited_fds first — pipe ends of previously forked siblings,
 * which would otherwise keep a dead sibling's pipe open and mask its
 * EOF. Call only while the process is single-threaded (fork() in a
 * threaded process may copy a held allocator lock into the child).
 */
Result<ChildProcess>
spawnChild(const std::function<int(int read_fd, int write_fd)>& child_main,
           const std::vector<int>& inherited_fds);

/** Write all of data to fd, retrying on EINTR/short writes. */
Status writeAllFd(int fd, const std::string& data);

/**
 * writeAllFd with a poll-based deadline: every chunk must become
 * writable within the remaining budget or the write fails with the
 * deadline Status (isDeadlineExpired). Handles non-blocking fds
 * (EAGAIN waits on poll). deadline_ms < 0 means no deadline.
 */
Status writeAllFd(int fd, const std::string& data, int deadline_ms);

/**
 * Whether a Status is a read/write deadline expiry — the liveness
 * signal the fleet liaisons act on (kill the hung worker, requeue its
 * unit) as opposed to EOF (notFound) or a broken pipe (ioError).
 */
bool isDeadlineExpired(const Status& status);

/**
 * Default cap on one wire line. Generous — a result line carries one
 * checkpoint entry per shard task of its unit — but bounded, so a
 * corrupt or malicious peer cannot grow the read buffer without
 * limit.
 */
constexpr std::size_t kDefaultMaxLineBytes = std::size_t{64} << 20;

/**
 * Buffered line reader over a pipe or socket fd. readLine() returns
 * the next '\n'-terminated line without the terminator; end-of-stream
 * (the peer closed the pipe) is a notFound Status, a read failure an
 * ioError. A final unterminated line is dataLoss — the peer died
 * mid-write. A line longer than max_line_bytes is dataLoss too, and
 * poisons the stream (framing is unrecoverable past an oversized
 * line). The deadline overload polls instead of blocking; an expired
 * deadline (isDeadlineExpired) leaves buffered partial data intact,
 * so the read can be retried.
 */
class LineReader
{
  public:
    explicit LineReader(int fd,
                        std::size_t max_line_bytes = kDefaultMaxLineBytes)
        : fd_(fd), max_line_bytes_(max_line_bytes)
    {
    }

    Result<std::string> readLine();

    /** readLine with a poll deadline; deadline_ms < 0 blocks. */
    Result<std::string> readLine(int deadline_ms);

  private:
    int fd_;
    std::size_t max_line_bytes_;
    std::string buffer_;
    bool eof_ = false;
    bool poisoned_ = false;
};

/** close() wrapper tolerating already-closed fds (idempotent). */
void closeFd(int& fd);

/**
 * Wait for the child to exit and return its encoded status: the
 * exit code for a normal exit, 128 + signal for a signalled death
 * (the shell convention, so reports read naturally).
 */
Result<int> waitForExit(std::int64_t pid);

/** Send a signal (default SIGKILL) to the child; ok if already dead. */
Status killChild(std::int64_t pid);

} // namespace gpuecc

#endif // GPUECC_COMMON_SUBPROCESS_HPP
