/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Monte Carlo campaigns need a fast, high-quality, seedable generator
 * whose streams are reproducible across platforms; we implement
 * xoshiro256** seeded through SplitMix64 rather than relying on the
 * implementation-defined std::mt19937_64 stream ordering of
 * std::uniform_int_distribution.
 */

#ifndef GPUECC_COMMON_RNG_HPP
#define GPUECC_COMMON_RNG_HPP

#include <cstddef>
#include <cstdint>

namespace gpuecc {

/**
 * xoshiro256** 1.0 generator (Blackman & Vigna), seeded via SplitMix64.
 *
 * All distribution helpers are member functions so results are fully
 * deterministic given a seed, independent of the standard library.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform integer in [0, bound) using Lemire's method; bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p. */
    bool nextBool(double p);

    /** Standard normal variate (Box-Muller, cached pair). */
    double nextGaussian();

    /** Poisson variate with given mean (inversion for small, PTRS-like normal approx for large). */
    std::uint64_t nextPoisson(double mean);

    /**
     * Binomial variate: successes in n independent trials with
     * probability p. Exact for small n; Poisson/normal approximations
     * (with complement handling near p = 1) otherwise.
     */
    std::uint64_t nextBinomial(std::uint64_t n, double p);

    /** Exponential variate with given rate (mean 1/rate). */
    double nextExponential(double rate);

    /**
     * Split off an independent child stream.
     *
     * Used so that parallel or per-subsystem streams don't correlate.
     * The child is keyed by 128 bits of parent state (two draws), so
     * split chains cannot collide the way a single-draw reseed could.
     */
    Rng split();

    /**
     * Statelessly derive stream `stream` of the family rooted at
     * `seed`.
     *
     * This is the campaign engine's sharding primitive: shard k of a
     * run always draws from forStream(seed, k), so results are
     * bit-identical for any thread count and any execution order.
     * Streams are decorrelated by perturbing the SplitMix64-expanded
     * seed state with a second SplitMix64 chain (distinct gamma)
     * keyed by the stream index.
     */
    static Rng forStream(std::uint64_t seed, std::uint64_t stream);

    /**
     * Bulk-derive `count` consecutive streams: out[i] is bit-identical
     * to forStream(seed, first_stream + i).
     *
     * The batched shard kernel derives one generator per 1024-sample
     * block of a shard, and a shard's block stream ids are consecutive,
     * so the SplitMix64 expansion of `seed` — identical across all of
     * them — is computed once here instead of once per block.
     */
    static void forStreams(std::uint64_t seed,
                           std::uint64_t first_stream,
                           std::size_t count, Rng* out);

  private:
    std::uint64_t s_[4];
    double cached_gaussian_ = 0.0;
    bool has_cached_gaussian_ = false;
};

} // namespace gpuecc

#endif // GPUECC_COMMON_RNG_HPP
