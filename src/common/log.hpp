/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a library bug), fatal() is for unrecoverable user error
 * (bad configuration or arguments), warn()/inform() are non-fatal
 * notices.
 */

#ifndef GPUECC_COMMON_LOG_HPP
#define GPUECC_COMMON_LOG_HPP

#include <cstdio>
#include <cstdlib>
#include <string>

namespace gpuecc {

/** Print an internal-bug message and abort. Never returns. */
[[noreturn]] inline void
panic(const std::string& msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/** Print a user-error message and exit(1). Never returns. */
[[noreturn]] inline void
fatal(const std::string& msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

/** Print a non-fatal warning to stderr. */
inline void
warn(const std::string& msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Print an informational status message to stderr. */
inline void
inform(const std::string& msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

/** Abort with a message unless cond holds. Enabled in all build types. */
inline void
require(bool cond, const std::string& msg)
{
    if (!cond)
        panic(msg);
}

} // namespace gpuecc

#endif // GPUECC_COMMON_LOG_HPP
