/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a library bug), fatal() is for unrecoverable user error
 * (bad configuration or arguments), warn()/inform() are non-fatal
 * notices.
 *
 * Emission is atomic: each message is formatted into one buffer and
 * written with a single fwrite under logMutex(), so concurrent shard
 * warnings never interleave mid-line on stderr. Set GPUECC_LOG_TIDS
 * (or call setLogThreadIds) to prefix each line with a small stable
 * per-thread id. A pre-line hook lets a live status line (the progress
 * reporter) clear itself before any log line lands.
 */

#ifndef GPUECC_COMMON_LOG_HPP
#define GPUECC_COMMON_LOG_HPP

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace gpuecc {

/** Serializes every stderr line the library emits. */
inline std::mutex&
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

/**
 * Called under logMutex() immediately before each log line is written.
 * Must write straight to stderr without taking logMutex() again.
 */
using LogHook = void (*)();

namespace logdetail {

inline std::atomic<LogHook>&
preLineHook()
{
    static std::atomic<LogHook> hook{nullptr};
    return hook;
}

inline std::atomic<bool>&
threadIdsFlag()
{
    static std::atomic<bool> flag{
        std::getenv("GPUECC_LOG_TIDS") != nullptr};
    return flag;
}

/** Small, stable, first-use-ordered id for the calling thread. */
inline int
threadLogId()
{
    static std::atomic<int> next{0};
    thread_local const int id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

/** Format and write one complete line with a single fwrite. */
inline void
emitLine(const char* severity, const std::string& msg)
{
    std::string line;
    line.reserve(msg.size() + 24);
    if (threadIdsFlag().load(std::memory_order_relaxed)) {
        line += "[t";
        line += std::to_string(threadLogId());
        line += "] ";
    }
    line += severity;
    line += ": ";
    line += msg;
    line += '\n';
    std::lock_guard<std::mutex> lock(logMutex());
    if (LogHook hook =
            preLineHook().load(std::memory_order_acquire))
        hook();
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

} // namespace logdetail

/** Install (or with nullptr remove) the pre-line hook. */
inline void
setLogPreLineHook(LogHook hook)
{
    logdetail::preLineHook().store(hook, std::memory_order_release);
}

/** Enable or disable the per-thread id prefix on every line. */
inline void
setLogThreadIds(bool enabled)
{
    logdetail::threadIdsFlag().store(enabled,
                                     std::memory_order_relaxed);
}

/** Print an internal-bug message and abort. Never returns. */
[[noreturn]] inline void
panic(const std::string& msg)
{
    logdetail::emitLine("panic", msg);
    std::abort();
}

/** Print a user-error message and exit(1). Never returns. */
[[noreturn]] inline void
fatal(const std::string& msg)
{
    logdetail::emitLine("fatal", msg);
    std::exit(1);
}

/** Print a non-fatal warning to stderr. */
inline void
warn(const std::string& msg)
{
    logdetail::emitLine("warn", msg);
}

/** Print an informational status message to stderr. */
inline void
inform(const std::string& msg)
{
    logdetail::emitLine("info", msg);
}

/** Abort with a message unless cond holds. Enabled in all build types. */
inline void
require(bool cond, const std::string& msg)
{
    if (!cond)
        panic(msg);
}

} // namespace gpuecc

#endif // GPUECC_COMMON_LOG_HPP
