#include "common/interrupt.hpp"

#include <atomic>
#include <csignal>

namespace gpuecc {

namespace {

// std::atomic<bool> with the default constructor is not guaranteed
// async-signal-safe to *initialize* dynamically, but namespace-scope
// zero-initialization happens before main; lock-free load/store are
// signal-safe per [atomics.lockfree].
std::atomic<bool> interrupt_flag{false};
std::atomic<bool> handlers_installed{false};

extern "C" void
onInterruptSignal(int sig)
{
    interrupt_flag.store(true, std::memory_order_relaxed);
    // A second signal of the same kind kills the process the normal
    // way — the escape hatch when a shard wedges and never polls.
    std::signal(sig, SIG_DFL);
}

} // namespace

void
installInterruptHandlers()
{
    if (handlers_installed.exchange(true, std::memory_order_relaxed))
        return;
    std::signal(SIGINT, onInterruptSignal);
    std::signal(SIGTERM, onInterruptSignal);
}

bool
interruptRequested()
{
    return interrupt_flag.load(std::memory_order_relaxed);
}

void
requestInterrupt()
{
    interrupt_flag.store(true, std::memory_order_relaxed);
}

void
clearInterrupt()
{
    interrupt_flag.store(false, std::memory_order_relaxed);
    // Re-arm the handlers: a delivered signal reset its disposition.
    if (handlers_installed.load(std::memory_order_relaxed)) {
        std::signal(SIGINT, onInterruptSignal);
        std::signal(SIGTERM, onInterruptSignal);
    }
}

} // namespace gpuecc
