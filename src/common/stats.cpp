#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace gpuecc {

void
OnlineStats::add(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
OnlineStats::variance() const
{
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

Interval
wilsonInterval(std::uint64_t successes, std::uint64_t trials, double z)
{
    if (trials == 0)
        return {0.0, 1.0};
    const double n = static_cast<double>(trials);
    const double p = static_cast<double>(successes) / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = (p + z2 / (2.0 * n)) / denom;
    const double half =
        z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
    return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z * M_SQRT1_2);
}

double
normalPdf(double z)
{
    return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
}

LineFit
linearRegression(const std::vector<double>& x, const std::vector<double>& y)
{
    require(x.size() == y.size() && x.size() >= 2,
            "linearRegression needs >= 2 matched points");
    const double n = static_cast<double>(x.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
        sxx += x[i] * x[i];
        sxy += x[i] * y[i];
        syy += y[i] * y[i];
    }
    const double sxx_c = sxx - sx * sx / n;
    const double sxy_c = sxy - sx * sy / n;
    const double syy_c = syy - sy * sy / n;
    require(sxx_c > 0.0, "linearRegression: x values are all identical");
    const double slope = sxy_c / sxx_c;
    const double intercept = (sy - slope * sx) / n;
    const double r2 = syy_c <= 0.0 ? 1.0 : (sxy_c * sxy_c) / (sxx_c * syy_c);
    return {intercept, slope, r2};
}

LineFit
exponentialRegression(const std::vector<double>& x,
                      const std::vector<double>& y)
{
    std::vector<double> logy;
    logy.reserve(y.size());
    for (double v : y) {
        require(v > 0.0, "exponentialRegression needs positive y values");
        logy.push_back(std::log(v));
    }
    LineFit f = linearRegression(x, logy);
    // Report A (not log A) in the intercept slot for convenience.
    return {std::exp(f.intercept), f.slope, f.r2};
}

std::vector<double>
nelderMead(const std::function<double(const std::vector<double>&)>& f,
           std::vector<double> start, double step, int iters)
{
    const std::size_t n = start.size();
    require(n >= 1, "nelderMead needs at least one dimension");

    struct Vertex
    {
        std::vector<double> x;
        double fx;
    };
    std::vector<Vertex> simplex;
    simplex.reserve(n + 1);
    simplex.push_back({start, f(start)});
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> v = start;
        v[i] += (v[i] != 0.0) ? step * v[i] : step;
        simplex.push_back({v, f(v)});
    }

    const double alpha = 1.0, gamma = 2.0, rho = 0.5, sigma = 0.5;
    for (int it = 0; it < iters; ++it) {
        std::sort(simplex.begin(), simplex.end(),
                  [](const Vertex& a, const Vertex& b) {
                      return a.fx < b.fx;
                  });
        // Centroid of all but the worst vertex.
        std::vector<double> c(n, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j)
                c[j] += simplex[i].x[j];
        }
        for (double& v : c)
            v /= static_cast<double>(n);

        auto blend = [&](const std::vector<double>& from, double coef) {
            std::vector<double> out(n);
            for (std::size_t j = 0; j < n; ++j)
                out[j] = c[j] + coef * (from[j] - c[j]);
            return out;
        };

        Vertex& worst = simplex.back();
        std::vector<double> xr = blend(worst.x, -alpha);
        const double fr = f(xr);
        if (fr < simplex[0].fx) {
            std::vector<double> xe = blend(worst.x, -gamma);
            const double fe = f(xe);
            worst = fe < fr ? Vertex{xe, fe} : Vertex{xr, fr};
        } else if (fr < simplex[n - 1].fx) {
            worst = {xr, fr};
        } else {
            std::vector<double> xc = blend(worst.x, rho);
            const double fc = f(xc);
            if (fc < worst.fx) {
                worst = {xc, fc};
            } else {
                for (std::size_t i = 1; i <= n; ++i) {
                    for (std::size_t j = 0; j < n; ++j) {
                        simplex[i].x[j] = simplex[0].x[j] +
                            sigma * (simplex[i].x[j] - simplex[0].x[j]);
                    }
                    simplex[i].fx = f(simplex[i].x);
                }
            }
        }
    }
    std::sort(simplex.begin(), simplex.end(),
              [](const Vertex& a, const Vertex& b) { return a.fx < b.fx; });
    return simplex[0].x;
}

NormalCdfFit
fitNormalCdf(const std::vector<double>& x, const std::vector<double>& y)
{
    require(x.size() == y.size() && x.size() >= 3,
            "fitNormalCdf needs >= 3 matched points");
    const double ymax = *std::max_element(y.begin(), y.end());
    const double xmid = x[x.size() / 2];
    const double xspan =
        *std::max_element(x.begin(), x.end()) -
        *std::min_element(x.begin(), x.end());

    auto rss = [&](const std::vector<double>& p) {
        const double n = p[0], mu = p[1], sigma = std::abs(p[2]) + 1e-9;
        double s = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) {
            const double pred = n * normalCdf((x[i] - mu) / sigma);
            const double d = pred - y[i];
            s += d * d;
        }
        return s;
    };

    std::vector<double> best = nelderMead(
        rss, {ymax, xmid, std::max(xspan / 4.0, 1e-6)}, 0.25, 4000);
    return {best[0], best[1], std::abs(best[2]), rss(best)};
}

ExponentialHistogram::ExponentialHistogram(std::uint64_t max_value)
{
    int bins = 1;
    std::uint64_t hi = 2;
    while (hi <= max_value) {
        hi *= 2;
        ++bins;
    }
    counts_.assign(bins, 0);
}

void
ExponentialHistogram::add(std::uint64_t value)
{
    require(value >= 1, "ExponentialHistogram values must be >= 1");
    int b = 0;
    std::uint64_t hi = 2;
    while (value >= hi && b + 1 < numBins()) {
        hi *= 2;
        ++b;
    }
    ++counts_[b];
    ++total_;
}

std::uint64_t
ExponentialHistogram::binLo(int b) const
{
    return std::uint64_t{1} << b;
}

std::uint64_t
ExponentialHistogram::binHi(int b) const
{
    return (std::uint64_t{1} << (b + 1)) - 1;
}

} // namespace gpuecc
