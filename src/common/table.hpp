/**
 * @file
 * Plain-text table rendering for the benchmark harnesses.
 *
 * Every bench binary prints the rows of the paper table or the series
 * of the paper figure it regenerates; TextTable keeps that output
 * aligned and diff-friendly.
 */

#ifndef GPUECC_COMMON_TABLE_HPP
#define GPUECC_COMMON_TABLE_HPP

#include <string>
#include <vector>

namespace gpuecc {

/** A simple column-aligned text table. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Render with padded columns, a header rule, and newlines. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given precision (fixed notation). */
std::string formatFixed(double v, int precision);

/** Format a probability as a percentage string, e.g. "5.40%". */
std::string formatPercent(double p, int precision = 4);

/** Format a value in scientific notation, e.g. "1.300e-05". */
std::string formatScientific(double v, int precision = 3);

} // namespace gpuecc

#endif // GPUECC_COMMON_TABLE_HPP
