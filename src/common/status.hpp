/**
 * @file
 * Structured, recoverable error reporting: Status and Result<T>.
 *
 * panic()/fatal() (common/log.hpp) are for unrecoverable ends of the
 * process; everything that can reasonably be retried, skipped, or
 * reported in an artifact — file I/O, checkpoint load, CLI value
 * parsing, registry lookup — returns a Status (or a Result<T> when
 * there is a value to hand back) so the caller decides whether the
 * campaign degrades gracefully or stops. Modeled on the absl::Status
 * convention, sized down to what the campaign layer needs.
 */

#ifndef GPUECC_COMMON_STATUS_HPP
#define GPUECC_COMMON_STATUS_HPP

#include <optional>
#include <string>
#include <type_traits>
#include <utility>

#include "common/log.hpp"

namespace gpuecc {

/** Machine-readable failure category of a Status. */
enum class ErrorCode
{
    ok = 0,
    invalidArgument, //!< malformed input (flag value, chaos spec, JSON)
    notFound,        //!< missing file, unknown scheme id
    ioError,         //!< open/write/rename failure
    dataLoss,        //!< file exists but its contents are corrupt
    failedPrecondition, //!< valid data that doesn't match this run
    unavailable,     //!< transient failure, retrying may succeed
    internal         //!< invariant violation surfaced as a value
};

/** Stable lower-case name of a code (for logs and artifacts). */
inline const char*
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::ok: return "ok";
      case ErrorCode::invalidArgument: return "invalid_argument";
      case ErrorCode::notFound: return "not_found";
      case ErrorCode::ioError: return "io_error";
      case ErrorCode::dataLoss: return "data_loss";
      case ErrorCode::failedPrecondition: return "failed_precondition";
      case ErrorCode::unavailable: return "unavailable";
      case ErrorCode::internal: return "internal";
    }
    return "unknown";
}

/** Outcome of an operation with no value: ok, or a coded message. */
class Status
{
  public:
    /** Success. */
    Status() = default;

    /** Failure with a category and a human-actionable message. */
    Status(ErrorCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
        require(code != ErrorCode::ok,
                "Status: an error needs a non-ok code");
    }

    static Status invalidArgument(std::string msg)
    {
        return {ErrorCode::invalidArgument, std::move(msg)};
    }
    static Status notFound(std::string msg)
    {
        return {ErrorCode::notFound, std::move(msg)};
    }
    static Status ioError(std::string msg)
    {
        return {ErrorCode::ioError, std::move(msg)};
    }
    static Status dataLoss(std::string msg)
    {
        return {ErrorCode::dataLoss, std::move(msg)};
    }
    static Status failedPrecondition(std::string msg)
    {
        return {ErrorCode::failedPrecondition, std::move(msg)};
    }
    static Status unavailable(std::string msg)
    {
        return {ErrorCode::unavailable, std::move(msg)};
    }
    static Status internalError(std::string msg)
    {
        return {ErrorCode::internal, std::move(msg)};
    }

    bool ok() const { return code_ == ErrorCode::ok; }
    ErrorCode code() const { return code_; }
    const std::string& message() const { return message_; }

    /** "io_error: cannot open foo.json" (or "ok"). */
    std::string toString() const
    {
        return ok() ? "ok"
                    : std::string(errorCodeName(code_)) + ": " + message_;
    }

  private:
    ErrorCode code_ = ErrorCode::ok;
    std::string message_;
};

/**
 * A value or the Status explaining its absence.
 *
 * Implicitly constructible from either, so functions can `return
 * value;` and `return Status::ioError(...);` symmetrically. value()
 * panics on an error Result — check ok() (or use valueOr) first.
 */
template <typename T>
class Result
{
  public:
    /** Success carrying a value (anything convertible to T). */
    template <typename U = T,
              typename = std::enable_if_t<
                  std::is_convertible_v<U&&, T> &&
                  !std::is_same_v<std::decay_t<U>, Result> &&
                  !std::is_same_v<std::decay_t<U>, Status>>>
    Result(U&& value) : value_(std::forward<U>(value))
    {
    }

    /** Failure; the status must not be ok. */
    Result(Status status) : status_(std::move(status))
    {
        require(!status_.ok(),
                "Result: an errorless Result needs a value");
    }

    bool ok() const { return value_.has_value(); }
    const Status& status() const { return status_; }

    const T& value() const&
    {
        require(ok(), "Result::value on error: " + status_.toString());
        return *value_;
    }
    T& value() &
    {
        require(ok(), "Result::value on error: " + status_.toString());
        return *value_;
    }
    /** Move the value out (for move-only payloads). */
    T&& value() &&
    {
        require(ok(), "Result::value on error: " + status_.toString());
        return std::move(*value_);
    }

    /** The value, or a fallback when this Result is an error. */
    T valueOr(T fallback) const&
    {
        return ok() ? *value_ : std::move(fallback);
    }

  private:
    Status status_;
    std::optional<T> value_;
};

} // namespace gpuecc

#endif // GPUECC_COMMON_STATUS_HPP
