/**
 * @file
 * Statistics utilities: online moments, proportion confidence
 * intervals, histograms, regressions, and a small derivative-free
 * optimizer used for the paper's non-linear retention-time fit.
 */

#ifndef GPUECC_COMMON_STATS_HPP
#define GPUECC_COMMON_STATS_HPP

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace gpuecc {

/** Streaming mean/variance accumulator (Welford). */
class OnlineStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations so far. */
    std::uint64_t count() const { return n_; }

    /** Sample mean (0 when empty). */
    double mean() const { return mean_; }

    /** Unbiased sample variance (0 with fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/** A two-sided confidence interval [lo, hi]. */
struct Interval
{
    double lo;
    double hi;
};

/**
 * Wilson score interval for a binomial proportion.
 *
 * @param successes number of positive outcomes
 * @param trials    total trials (may be 0, giving [0, 1])
 * @param z         normal quantile (1.96 for 95%, 2.576 for 99%)
 */
Interval wilsonInterval(std::uint64_t successes, std::uint64_t trials,
                        double z = 1.96);

/** Standard normal cumulative distribution function. */
double normalCdf(double z);

/** Standard normal density. */
double normalPdf(double z);

/** Result of an ordinary least squares line fit y = a + b*x. */
struct LineFit
{
    double intercept;
    double slope;
    double r2;
};

/** Fit y = a + b*x by least squares; requires >= 2 points. */
LineFit linearRegression(const std::vector<double>& x,
                         const std::vector<double>& y);

/**
 * Fit y = A * exp(b*x) by log-linear least squares (all y must be > 0).
 *
 * Matches the "exponential regressions of the historical data" in the
 * paper's Figure 1.
 */
LineFit exponentialRegression(const std::vector<double>& x,
                              const std::vector<double>& y);

/**
 * Nelder-Mead simplex minimizer.
 *
 * @param f     objective over a parameter vector
 * @param start initial guess
 * @param step  initial simplex displacement per dimension
 * @param iters maximum iterations
 * @return the best parameter vector found
 */
std::vector<double> nelderMead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> start, double step = 0.1, int iters = 2000);

/** Parameters of a scaled normal CDF fit count(x) = n * Phi((x-mu)/sigma). */
struct NormalCdfFit
{
    double n;
    double mu;
    double sigma;
    /** Residual sum of squares at the optimum. */
    double rss;
};

/**
 * Non-linear least squares fit of a scaled normal CDF, reproducing the
 * weak-cell retention-time model of the paper's Figure 3b.
 */
NormalCdfFit fitNormalCdf(const std::vector<double>& x,
                          const std::vector<double>& y);

/** Fixed-bin histogram with exponentially growing bin edges. */
class ExponentialHistogram
{
  public:
    /**
     * Bins are [1,2), [2,4), [4,8), ... doubling up to >= max_value.
     *
     * @param max_value largest value that must be representable
     */
    explicit ExponentialHistogram(std::uint64_t max_value);

    /** Record one value (>= 1). */
    void add(std::uint64_t value);

    /** Number of bins. */
    int numBins() const { return static_cast<int>(counts_.size()); }

    /** Inclusive lower edge of bin b. */
    std::uint64_t binLo(int b) const;

    /** Exclusive upper edge of bin b. */
    std::uint64_t binHi(int b) const;

    /** Count in bin b. */
    std::uint64_t count(int b) const { return counts_[b]; }

    /** Total recorded values. */
    std::uint64_t total() const { return total_; }

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace gpuecc

#endif // GPUECC_COMMON_STATS_HPP
