/**
 * @file
 * Fixed-width bit vector used for codewords and memory entries.
 *
 * Bits<N> packs N bits into uint64_t words, LSB-first (bit 0 is the
 * least significant bit of word 0). It supports the operations the ECC
 * machinery needs: per-bit access, XOR/AND, popcount, and the
 * parity-of-AND inner product used for syndrome generation.
 */

#ifndef GPUECC_COMMON_BITS_HPP
#define GPUECC_COMMON_BITS_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace gpuecc {

/**
 * A fixed-size vector of N bits with value semantics.
 *
 * @tparam N number of bits; any trailing bits in the last word are
 *           kept zero as a class invariant.
 */
template <int N>
class Bits
{
  public:
    static constexpr int numBits = N;
    static constexpr int numWords = (N + 63) / 64;

    /** Construct an all-zero vector. */
    constexpr Bits() : words_{} {}

    /** Construct from a low word (remaining bits zero). */
    explicit constexpr Bits(std::uint64_t low) : words_{}
    {
        words_[0] = low & maskFor(0);
    }

    /** Read bit i (0 = LSB of word 0). */
    constexpr int
    get(int i) const
    {
        return static_cast<int>((words_[i >> 6] >> (i & 63)) & 1u);
    }

    /** Set bit i to v (0 or 1). */
    constexpr void
    set(int i, int v)
    {
        const std::uint64_t m = std::uint64_t{1} << (i & 63);
        if (v)
            words_[i >> 6] |= m;
        else
            words_[i >> 6] &= ~m;
    }

    /** Toggle bit i. */
    constexpr void
    flip(int i)
    {
        words_[i >> 6] ^= std::uint64_t{1} << (i & 63);
    }

    /** Direct word access (word w holds bits [64w, 64w+63]). */
    constexpr std::uint64_t word(int w) const { return words_[w]; }

    /** Overwrite word w; trailing bits beyond N are masked off. */
    constexpr void
    setWord(int w, std::uint64_t v)
    {
        words_[w] = v & maskFor(w);
    }

    /** Number of set bits. */
    constexpr int
    popcount() const
    {
        int n = 0;
        for (int w = 0; w < numWords; ++w)
            n += popcount64(words_[w]);
        return n;
    }

    /** True if no bit is set. */
    constexpr bool
    none() const
    {
        for (int w = 0; w < numWords; ++w)
            if (words_[w])
                return false;
        return true;
    }

    /** Parity (mod-2 sum) of the AND with another vector. */
    constexpr int
    andParity(const Bits& other) const
    {
        std::uint64_t acc = 0;
        for (int w = 0; w < numWords; ++w)
            acc ^= words_[w] & other.words_[w];
        return parity64(acc);
    }

    constexpr Bits&
    operator^=(const Bits& o)
    {
        for (int w = 0; w < numWords; ++w)
            words_[w] ^= o.words_[w];
        return *this;
    }

    constexpr Bits&
    operator&=(const Bits& o)
    {
        for (int w = 0; w < numWords; ++w)
            words_[w] &= o.words_[w];
        return *this;
    }

    constexpr Bits&
    operator|=(const Bits& o)
    {
        for (int w = 0; w < numWords; ++w)
            words_[w] |= o.words_[w];
        return *this;
    }

    friend constexpr Bits
    operator^(Bits a, const Bits& b)
    {
        a ^= b;
        return a;
    }

    friend constexpr Bits
    operator&(Bits a, const Bits& b)
    {
        a &= b;
        return a;
    }

    friend constexpr Bits
    operator|(Bits a, const Bits& b)
    {
        a |= b;
        return a;
    }

    friend constexpr bool
    operator==(const Bits& a, const Bits& b)
    {
        for (int w = 0; w < numWords; ++w)
            if (a.words_[w] != b.words_[w])
                return false;
        return true;
    }

    friend constexpr bool operator!=(const Bits& a, const Bits& b)
    {
        return !(a == b);
    }

    /** Index of the lowest set bit, or -1 when empty. */
    constexpr int
    lowestSetBit() const
    {
        for (int w = 0; w < numWords; ++w) {
            if (words_[w])
                return 64 * w + std::countr_zero(words_[w]);
        }
        return -1;
    }

    /**
     * Visit each set-bit index in ascending order.
     *
     * @param fn callable taking the bit index as int.
     */
    template <typename Fn>
    constexpr void
    forEachSetBit(Fn&& fn) const
    {
        for (int w = 0; w < numWords; ++w) {
            std::uint64_t x = words_[w];
            while (x) {
                fn(64 * w + std::countr_zero(x));
                x &= x - 1;
            }
        }
    }

    /** Extract a contiguous bit field [pos, pos+len) as a uint64 (len <= 64). */
    constexpr std::uint64_t
    extract(int pos, int len) const
    {
        std::uint64_t v = 0;
        for (int i = 0; i < len; ++i)
            v |= static_cast<std::uint64_t>(get(pos + i)) << i;
        return v;
    }

    /** Insert the low len bits of v at [pos, pos+len). */
    constexpr void
    insert(int pos, int len, std::uint64_t v)
    {
        for (int i = 0; i < len; ++i)
            set(pos + i, static_cast<int>((v >> i) & 1u));
    }

    /** Render as a binary string, bit N-1 first (for diagnostics). */
    std::string
    toString() const
    {
        std::string s;
        s.reserve(N);
        for (int i = N - 1; i >= 0; --i)
            s.push_back(get(i) ? '1' : '0');
        return s;
    }

  private:
    static constexpr std::uint64_t
    maskFor(int w)
    {
        const int bits_here = (w == numWords - 1 && (N & 63))
            ? (N & 63) : 64;
        return lowMask64(bits_here);
    }

    std::array<std::uint64_t, numWords> words_;
};

/** One 72-bit DRAM beat codeword (64 data + 8 check bits). */
using Bits72 = Bits<72>;
/** One 288-bit physical memory entry (32B data + 4B check). */
using Bits288 = Bits<288>;

} // namespace gpuecc

#endif // GPUECC_COMMON_BITS_HPP
