/**
 * @file
 * Small bit-manipulation helpers shared across the library.
 */

#ifndef GPUECC_COMMON_BITOPS_HPP
#define GPUECC_COMMON_BITOPS_HPP

#include <bit>
#include <cstdint>

namespace gpuecc {

/** Number of set bits in a 64-bit word. */
inline int
popcount64(std::uint64_t x)
{
    return std::popcount(x);
}

/** Even/odd parity (1 if an odd number of bits are set). */
inline int
parity64(std::uint64_t x)
{
    return std::popcount(x) & 1;
}

/** Extract bit i (0 = LSB) of a 64-bit word. */
inline int
getBit64(std::uint64_t x, int i)
{
    return static_cast<int>((x >> i) & 1u);
}

/** A 64-bit word with only bit i set. */
inline std::uint64_t
bit64(int i)
{
    return std::uint64_t{1} << i;
}

/** Mask with the low n bits set (n in [0, 64]). */
inline std::uint64_t
lowMask64(int n)
{
    return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

} // namespace gpuecc

#endif // GPUECC_COMMON_BITOPS_HPP
