#include "common/cli.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "common/log.hpp"

namespace gpuecc {

void
Cli::addFlag(const std::string& name, const std::string& def,
             const std::string& help)
{
    flags_[name] = {def, help};
}

std::string
Cli::usageText(const std::string& program_desc) const
{
    std::string out = program_desc + "\n\nflags:\n";
    for (const auto& [name, flag] : flags_) {
        char line[256];
        std::snprintf(line, sizeof(line), "  --%-20s %s (default: %s)\n",
                      name.c_str(), flag.help.c_str(),
                      flag.value.c_str());
        out += line;
    }
    return out;
}

Status
Cli::tryParse(int argc, char** argv)
{
    help_requested_ = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            help_requested_ = true;
            continue;
        }
        if (arg.rfind("--", 0) != 0) {
            return Status::invalidArgument(
                "unexpected positional argument: " + arg);
        }
        arg = arg.substr(2);
        std::string name = arg, value;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else if (i + 1 < argc && argv[i + 1][0] != '-') {
            value = argv[++i];
        } else {
            value = "true"; // boolean switch form
        }
        const auto it = flags_.find(name);
        if (it == flags_.end()) {
            return Status::invalidArgument("unknown flag --" + name);
        }
        it->second.value = value;
    }
    return {};
}

void
Cli::parse(int argc, char** argv, const std::string& program_desc)
{
    const Status status = tryParse(argc, argv);
    if (help_requested_) {
        std::printf("%s", usageText(program_desc).c_str());
        std::exit(0);
    }
    if (!status.ok()) {
        std::fprintf(stderr, "error: %s (try --help)\n\n%s",
                     status.message().c_str(),
                     usageText(program_desc).c_str());
        std::exit(kUsageExitCode);
    }
}

std::string
Cli::getString(const std::string& name) const
{
    const auto it = flags_.find(name);
    require(it != flags_.end(), "undeclared flag: " + name);
    return it->second.value;
}

Result<std::int64_t>
Cli::tryGetInt(const std::string& name) const
{
    const std::string text = getString(name);
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 0);
    if (text.empty() || end != text.c_str() + text.size()) {
        return Status::invalidArgument("--" + name + ": '" + text +
                                       "' is not an integer");
    }
    if (errno == ERANGE) {
        return Status::invalidArgument("--" + name + ": '" + text +
                                       "' overflows 64 bits");
    }
    return static_cast<std::int64_t>(v);
}

Result<double>
Cli::tryGetDouble(const std::string& name) const
{
    const std::string text = getString(name);
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (text.empty() || end != text.c_str() + text.size()) {
        return Status::invalidArgument("--" + name + ": '" + text +
                                       "' is not a number");
    }
    return v;
}

std::int64_t
Cli::getInt(const std::string& name) const
{
    Result<std::int64_t> v = tryGetInt(name);
    if (!v.ok())
        fatal(v.status().message());
    return v.value();
}

double
Cli::getDouble(const std::string& name) const
{
    Result<double> v = tryGetDouble(name);
    if (!v.ok())
        fatal(v.status().message());
    return v.value();
}

bool
Cli::getBool(const std::string& name) const
{
    const std::string v = getString(name);
    return v == "1" || v == "true" || v == "yes";
}

} // namespace gpuecc
