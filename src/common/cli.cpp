#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/log.hpp"

namespace gpuecc {

void
Cli::addFlag(const std::string& name, const std::string& def,
             const std::string& help)
{
    flags_[name] = {def, help};
}

void
Cli::parse(int argc, char** argv, const std::string& program_desc)
{
    auto usage = [&](int code) {
        std::printf("%s\n\nflags:\n", program_desc.c_str());
        for (const auto& [name, flag] : flags_) {
            std::printf("  --%-18s %s (default: %s)\n", name.c_str(),
                        flag.help.c_str(), flag.value.c_str());
        }
        std::exit(code);
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            usage(0);
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected positional argument: " + arg);
        arg = arg.substr(2);
        std::string name = arg, value;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else if (i + 1 < argc && argv[i + 1][0] != '-') {
            value = argv[++i];
        } else {
            value = "true"; // boolean switch form
        }
        const auto it = flags_.find(name);
        if (it == flags_.end())
            fatal("unknown flag --" + name + " (try --help)");
        it->second.value = value;
    }
}

std::string
Cli::getString(const std::string& name) const
{
    const auto it = flags_.find(name);
    require(it != flags_.end(), "undeclared flag: " + name);
    return it->second.value;
}

std::int64_t
Cli::getInt(const std::string& name) const
{
    return std::strtoll(getString(name).c_str(), nullptr, 0);
}

double
Cli::getDouble(const std::string& name) const
{
    return std::strtod(getString(name).c_str(), nullptr);
}

bool
Cli::getBool(const std::string& name) const
{
    const std::string v = getString(name);
    return v == "1" || v == "true" || v == "yes";
}

} // namespace gpuecc
