#include "common/thread_pool.hpp"

#include <chrono>

#include "common/log.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#define GPUECC_HAVE_PTHREAD_AFFINITY 1
#else
#define GPUECC_HAVE_PTHREAD_AFFINITY 0
#endif

namespace gpuecc {

namespace {

/**
 * Dense worker id for the thread executing a parallelFor body.
 * Thread-locals default to 0, which is exactly right: the calling
 * thread is worker 0, and threads outside any pool fall back to the
 * slot single-threaded helpers expect.
 */
thread_local int tls_worker_id = 0;

#if GPUECC_HAVE_PTHREAD_AFFINITY
/** Pin a pthread to one CPU; returns false if the call failed. */
bool
pinThreadToCpu(pthread_t handle, int cpu)
{
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(cpu), &set);
    return pthread_setaffinity_np(handle, sizeof(set), &set) == 0;
}
#endif

} // namespace

int
ThreadPool::currentWorker()
{
    return tls_worker_id;
}

int
ThreadPool::hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

int
ThreadPool::resolveThreadCount(int requested)
{
    if (requested < 0)
        fatal("thread count must be >= 0 (0 selects all cores)");
    return requested == 0 ? hardwareThreads() : requested;
}

ThreadPool::ThreadPool(int threads, bool pin_workers)
    : num_threads_(resolveThreadCount(threads)),
      pin_workers_(pin_workers)
{
    stats_.worker_busy_seconds.assign(
        static_cast<std::size_t>(num_threads_), 0.0);
    workers_.reserve(num_threads_);
    for (int i = 0; i < num_threads_; ++i)
        workers_.push_back(std::make_unique<Worker>());
    if (pin_workers_) {
        affinity_applied_ = true;
        pinCallingThread();
    }
    // Worker 0 is the calling thread; only spawn the others.
    threads_.reserve(num_threads_ - 1);
    for (int i = 1; i < num_threads_; ++i) {
        threads_.emplace_back([this, i] { workerLoop(i); });
        if (pin_workers_)
            pinSpawnedThread(threads_.back(), i);
    }
}

void
ThreadPool::pinCallingThread()
{
#if GPUECC_HAVE_PTHREAD_AFFINITY
    // Save the caller's mask so the destructor can undo the pin —
    // the pool borrows the calling thread, it doesn't own it.
    if (pthread_getaffinity_np(pthread_self(), sizeof(caller_mask_),
                               reinterpret_cast<cpu_set_t*>(
                                   caller_mask_)) == 0) {
        restore_caller_affinity_ = true;
    }
    if (!pinThreadToCpu(pthread_self(), 0))
        affinity_applied_ = false;
#else
    affinity_applied_ = false;
#endif
}

void
ThreadPool::pinSpawnedThread(std::thread& t, int worker)
{
#if GPUECC_HAVE_PTHREAD_AFFINITY
    const int cpu = worker % hardwareThreads();
    if (!pinThreadToCpu(t.native_handle(), cpu))
        affinity_applied_ = false;
#else
    (void)t;
    (void)worker;
    affinity_applied_ = false;
#endif
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(gate_mutex_);
        shutdown_ = true;
    }
    gate_cv_.notify_all();
    for (std::thread& t : threads_)
        t.join();
#if GPUECC_HAVE_PTHREAD_AFFINITY
    if (restore_caller_affinity_) {
        pthread_setaffinity_np(pthread_self(), sizeof(caller_mask_),
                               reinterpret_cast<cpu_set_t*>(
                                   caller_mask_));
    }
#endif
}

void
ThreadPool::workerLoop(int self)
{
    tls_worker_id = self;
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(gate_mutex_);
            gate_cv_.wait(lock, [&] {
                return shutdown_ || generation_ != seen;
            });
            if (shutdown_)
                return;
            seen = generation_;
        }
        drain(self);
    }
}

bool
ThreadPool::popOwn(int self, std::uint64_t& idx)
{
    Worker& w = *workers_[self];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (w.queue.empty())
        return false;
    idx = w.queue.front();
    w.queue.pop_front();
    return true;
}

bool
ThreadPool::steal(int self, std::uint64_t& idx)
{
    for (int off = 1; off < num_threads_; ++off) {
        const int victim = (self + off) % num_threads_;
        Worker& w = *workers_[victim];
        std::lock_guard<std::mutex> lock(w.mutex);
        if (w.queue.empty())
            continue;
        // Steal from the tail, away from the owner's pop end.
        idx = w.queue.back();
        w.queue.pop_back();
        return true;
    }
    return false;
}

ThreadPool::Stats
ThreadPool::stats() const
{
    std::lock_guard<std::mutex> lock(done_mutex_);
    return stats_;
}

void
ThreadPool::drain(int self)
{
    std::uint64_t idx = 0;
    std::uint64_t done = 0;
    std::uint64_t stolen = 0;
    double busy = 0.0;
    for (;;) {
        const bool own = popOwn(self, idx);
        if (!own && !steal(self, idx))
            break;
        const auto body_start = std::chrono::steady_clock::now();
        try {
            (*body_)(idx);
        } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex_);
            if (!first_error_)
                first_error_ = std::current_exception();
        }
        busy += std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - body_start)
                    .count();
        if (!own)
            ++stolen;
        ++done;
    }
    if (done > 0) {
        // One merge per drain, piggybacking on the completion lock,
        // keeps the telemetry off the per-task path.
        std::lock_guard<std::mutex> lock(done_mutex_);
        stats_.tasks_executed += done;
        stats_.steals += stolen;
        stats_.busy_seconds += busy;
        stats_.worker_busy_seconds[static_cast<std::size_t>(self)] +=
            busy;
        remaining_ -= done;
        if (remaining_ == 0)
            done_cv_.notify_all();
    }
}

void
ThreadPool::parallelFor(std::uint64_t n,
                        const std::function<void(std::uint64_t)>& body)
{
    if (n == 0)
        return;
    if (num_threads_ == 1) {
        // Inline fast path: no queues, no locks.
        const auto loop_start = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < n; ++i)
            body(i);
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - loop_start)
                .count();
        std::lock_guard<std::mutex> lock(done_mutex_);
        stats_.tasks_executed += n;
        stats_.busy_seconds += elapsed;
        stats_.worker_busy_seconds[0] += elapsed;
        stats_.wall_seconds += elapsed;
        return;
    }

    const auto loop_start = std::chrono::steady_clock::now();
    first_error_ = nullptr;
    body_ = &body;
    remaining_ = n;
    const auto w = static_cast<std::uint64_t>(num_threads_);
    for (std::uint64_t t = 0; t < w; ++t) {
        Worker& worker = *workers_[t];
        std::lock_guard<std::mutex> lock(worker.mutex);
        // Contiguous block per worker; stealing rebalances the rest.
        for (std::uint64_t i = n * t / w; i < n * (t + 1) / w; ++i)
            worker.queue.push_back(i);
    }
    {
        std::lock_guard<std::mutex> lock(gate_mutex_);
        ++generation_;
    }
    gate_cv_.notify_all();

    drain(0);
    {
        std::unique_lock<std::mutex> lock(done_mutex_);
        done_cv_.wait(lock, [&] { return remaining_ == 0; });
        stats_.wall_seconds +=
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - loop_start)
                .count();
    }
    body_ = nullptr;
    if (first_error_)
        std::rethrow_exception(first_error_);
}

} // namespace gpuecc
