/**
 * @file
 * Cooperative interrupt flag for long-running campaigns.
 *
 * installInterruptHandlers() routes SIGINT and SIGTERM into a single
 * process-wide flag that shard workers poll between tasks, so an
 * interrupted campaign finishes the shards in flight, flushes a final
 * checkpoint, and exits cleanly instead of dying mid-write. A second
 * signal restores the default disposition, so a stuck process can
 * still be force-killed with a repeated Ctrl-C.
 */

#ifndef GPUECC_COMMON_INTERRUPT_HPP
#define GPUECC_COMMON_INTERRUPT_HPP

namespace gpuecc {

/**
 * Route SIGINT/SIGTERM to the interrupt flag. Idempotent; installed
 * lazily by the campaign runner when checkpointing is enabled.
 */
void installInterruptHandlers();

/** Whether an interrupt (signal or programmatic) has been requested. */
bool interruptRequested();

/**
 * Raise the flag programmatically — the chaos harness's kill-point
 * and unit tests use this to simulate a mid-campaign SIGTERM.
 */
void requestInterrupt();

/** Lower the flag (tests; a new process starts clear). */
void clearInterrupt();

} // namespace gpuecc

#endif // GPUECC_COMMON_INTERRUPT_HPP
