#include "common/rng.hpp"

#include <cmath>

#include "common/log.hpp"

namespace gpuecc {

namespace {

std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto& s : s_)
        s = splitmix64(x);
    // xoshiro must not start from the all-zero state.
    if (!(s_[0] | s_[1] | s_[2] | s_[3]))
        s_[0] = 1;
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    require(bound > 0, "Rng::nextBounded bound must be positive");
    // Lemire's nearly-divisionless method with rejection for exactness.
    std::uint64_t x = next64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        const std::uint64_t t = -bound % bound;
        while (l < t) {
            x = next64();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

double
Rng::nextGaussian()
{
    if (has_cached_gaussian_) {
        has_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    double u1 = 0.0;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    const double u2 = nextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
}

std::uint64_t
Rng::nextPoisson(double mean)
{
    require(mean >= 0.0, "Rng::nextPoisson mean must be non-negative");
    if (mean == 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth inversion in the log domain for numerical safety.
        const double l = std::exp(-mean);
        std::uint64_t k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= nextDouble();
        } while (p > l);
        return k - 1;
    }
    // Normal approximation with continuity correction; adequate for the
    // large event counts used by the beam simulator.
    const double g = nextGaussian();
    const double v = mean + std::sqrt(mean) * g + 0.5;
    return v < 0.0 ? 0 : static_cast<std::uint64_t>(v);
}

std::uint64_t
Rng::nextBinomial(std::uint64_t n, double p)
{
    require(p >= 0.0 && p <= 1.0, "Rng::nextBinomial p out of range");
    if (n == 0 || p == 0.0)
        return 0;
    if (p == 1.0)
        return n;
    if (p > 0.5)
        return n - nextBinomial(n, 1.0 - p);
    if (n <= 64) {
        std::uint64_t k = 0;
        for (std::uint64_t i = 0; i < n; ++i)
            k += nextBool(p);
        return k;
    }
    const double mean = static_cast<double>(n) * p;
    if (mean < 30.0) {
        // Poisson approximation in the rare-event regime.
        return std::min(n, nextPoisson(mean));
    }
    // Normal approximation with continuity correction.
    const double sd = std::sqrt(mean * (1.0 - p));
    const double v = mean + sd * nextGaussian() + 0.5;
    if (v < 0.0)
        return 0;
    return std::min(n, static_cast<std::uint64_t>(v));
}

double
Rng::nextExponential(double rate)
{
    require(rate > 0.0, "Rng::nextExponential rate must be positive");
    double u = 0.0;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

Rng
Rng::split()
{
    const std::uint64_t hi = next64();
    const std::uint64_t lo = next64();
    return forStream(hi, lo);
}

namespace {

/**
 * Perturb a SplitMix64-expanded base state with the stream chain —
 * the common tail of forStream and forStreams, factored so the bulk
 * path cannot drift from the stateless one.
 */
void
applyStreamPerturbation(const std::uint64_t (&base)[4],
                        std::uint64_t stream, std::uint64_t (&s)[4])
{
    // Second SplitMix64 chain with a distinct odd gamma: two streams
    // of the same seed (or one stream of two seeds) end up with
    // unrelated xoshiro states without consuming any generator output.
    std::uint64_t y = stream;
    for (int i = 0; i < 4; ++i) {
        y += 0xD1B54A32D192ED03ull;
        std::uint64_t z = y;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        s[i] = base[i] ^ z ^ (z >> 31);
    }
    if (!(s[0] | s[1] | s[2] | s[3]))
        s[0] = 1;
}

} // namespace

Rng
Rng::forStream(std::uint64_t seed, std::uint64_t stream)
{
    Rng r(seed);
    std::uint64_t base[4] = {r.s_[0], r.s_[1], r.s_[2], r.s_[3]};
    applyStreamPerturbation(base, stream, r.s_);
    return r;
}

void
Rng::forStreams(std::uint64_t seed, std::uint64_t first_stream,
                std::size_t count, Rng* out)
{
    // One SplitMix64 seed expansion shared by every derived stream.
    const Rng root(seed);
    std::uint64_t base[4] = {root.s_[0], root.s_[1], root.s_[2],
                             root.s_[3]};
    for (std::size_t i = 0; i < count; ++i) {
        out[i] = root;
        applyStreamPerturbation(
            base, first_stream + static_cast<std::uint64_t>(i),
            out[i].s_);
    }
}

} // namespace gpuecc
