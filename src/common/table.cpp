#include "common/table.hpp"

#include <cstdio>
#include <sstream>

#include "common/log.hpp"

namespace gpuecc {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    require(!headers_.empty(), "TextTable needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    require(cells.size() == headers_.size(),
            "TextTable row width must match the header");
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size())
                out << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        out << '\n';
    };
    emit_row(headers_);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out << std::string(rule, '-') << '\n';
    for (const auto& row : rows_)
        emit_row(row);
    return out.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
formatFixed(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
formatPercent(double p, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, p * 100.0);
    return buf;
}

std::string
formatScientific(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
    return buf;
}

} // namespace gpuecc
