/**
 * @file
 * Minimal command-line flag parser for the bench and example binaries.
 *
 * Supports "--name value" and "--name=value" forms plus boolean
 * switches; unknown flags are a fatal user error so typos don't pass
 * silently.
 */

#ifndef GPUECC_COMMON_CLI_HPP
#define GPUECC_COMMON_CLI_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gpuecc {

/** Parsed command line with typed accessors and defaults. */
class Cli
{
  public:
    /**
     * Declare a flag before parsing.
     *
     * @param name flag name without the leading dashes
     * @param def  default value as text
     * @param help one-line description for --help output
     */
    void addFlag(const std::string& name, const std::string& def,
                 const std::string& help);

    /**
     * Parse argv; exits with usage text on --help or unknown flags.
     *
     * @param program_desc one-line description printed by --help
     */
    void parse(int argc, char** argv, const std::string& program_desc);

    /** Value of a declared flag as a string. */
    std::string getString(const std::string& name) const;

    /** Value of a declared flag as a 64-bit integer. */
    std::int64_t getInt(const std::string& name) const;

    /** Value of a declared flag as a double. */
    double getDouble(const std::string& name) const;

    /** Value of a declared flag as a boolean ("1"/"true" are true). */
    bool getBool(const std::string& name) const;

  private:
    struct Flag
    {
        std::string value;
        std::string help;
    };
    std::map<std::string, Flag> flags_;
};

} // namespace gpuecc

#endif // GPUECC_COMMON_CLI_HPP
