/**
 * @file
 * Minimal command-line flag parser for the bench and example binaries.
 *
 * Supports "--name value" and "--name=value" forms plus boolean
 * switches. Unknown flags, positional arguments, and malformed
 * numeric values are user errors: parse() prints the problem plus the
 * usage text and exits nonzero (never an uncaught exception, never a
 * silently ignored flag); tryParse()/tryGetInt()/tryGetDouble()
 * surface the same problems as structured Status/Result values for
 * callers (and tests) that want to recover.
 */

#ifndef GPUECC_COMMON_CLI_HPP
#define GPUECC_COMMON_CLI_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace gpuecc {

/** Exit code of a command-line usage error (BSD EX_USAGE). */
constexpr int kUsageExitCode = 64;

/** Parsed command line with typed accessors and defaults. */
class Cli
{
  public:
    /**
     * Declare a flag before parsing.
     *
     * @param name flag name without the leading dashes
     * @param def  default value as text
     * @param help one-line description for --help output
     */
    void addFlag(const std::string& name, const std::string& def,
                 const std::string& help);

    /**
     * Parse argv. On --help/-h prints usage and exits 0; on an
     * unknown flag or positional argument prints the error and the
     * usage text to stderr and exits kUsageExitCode.
     *
     * @param program_desc one-line description printed by --help
     */
    void parse(int argc, char** argv, const std::string& program_desc);

    /**
     * Parse argv without printing or exiting: an unknown flag or
     * positional argument is an invalidArgument error. --help/-h
     * only sets helpRequested() — the caller decides what to do.
     */
    Status tryParse(int argc, char** argv);

    /** Whether the last tryParse/parse saw --help or -h. */
    bool helpRequested() const { return help_requested_; }

    /** The --help text: program description plus the flag table. */
    std::string usageText(const std::string& program_desc) const;

    /** Value of a declared flag as a string. */
    std::string getString(const std::string& name) const;

    /** Value of a declared flag as a 64-bit integer; fatal if the
     *  value isn't a (possibly hex) integer. */
    std::int64_t getInt(const std::string& name) const;

    /** Value of a declared flag as a double; fatal if malformed. */
    double getDouble(const std::string& name) const;

    /** Value of a declared flag as a boolean ("1"/"true" are true). */
    bool getBool(const std::string& name) const;

    /** getInt with a structured error instead of fatal. */
    Result<std::int64_t> tryGetInt(const std::string& name) const;

    /** getDouble with a structured error instead of fatal. */
    Result<double> tryGetDouble(const std::string& name) const;

  private:
    struct Flag
    {
        std::string value;
        std::string help;
    };
    std::map<std::string, Flag> flags_;
    bool help_requested_ = false;
};

} // namespace gpuecc

#endif // GPUECC_COMMON_CLI_HPP
