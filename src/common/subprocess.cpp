#include "common/subprocess.hpp"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define GPUECC_HAS_SUBPROCESS 1
#include <csignal>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define GPUECC_HAS_SUBPROCESS 0
#endif

#include <chrono>

namespace gpuecc {

namespace {

/** The one deadline message isDeadlineExpired keys on. */
constexpr const char* kDeadlineMessage = "io deadline expired";

} // namespace

bool
subprocessSupported()
{
    return GPUECC_HAS_SUBPROCESS != 0;
}

bool
isDeadlineExpired(const Status& status)
{
    return status.code() == ErrorCode::unavailable &&
           status.message() == kDeadlineMessage;
}

#if GPUECC_HAS_SUBPROCESS

void
ignoreSigpipe()
{
    std::signal(SIGPIPE, SIG_IGN);
}

Result<ChildProcess>
spawnChild(
    const std::function<int(int read_fd, int write_fd)>& child_main,
    const std::vector<int>& inherited_fds)
{
    int to_child[2];   // parent writes [1], child reads [0]
    int from_child[2]; // child writes [1], parent reads [0]
    if (pipe(to_child) != 0) {
        return Status::ioError(std::string("pipe: ") +
                               std::strerror(errno));
    }
    if (pipe(from_child) != 0) {
        const int err = errno;
        close(to_child[0]);
        close(to_child[1]);
        return Status::ioError(std::string("pipe: ") +
                               std::strerror(err));
    }

    const pid_t pid = fork();
    if (pid < 0) {
        const int err = errno;
        close(to_child[0]);
        close(to_child[1]);
        close(from_child[0]);
        close(from_child[1]);
        return Status::ioError(std::string("fork: ") +
                               std::strerror(err));
    }
    if (pid == 0) {
        // Child: drop the parent ends of our own pipes and every
        // inherited sibling fd — holding a sibling's write end open
        // would hide that sibling's death from the parent (no EOF).
        close(to_child[1]);
        close(from_child[0]);
        for (const int fd : inherited_fds)
            close(fd);
        const int code = child_main(to_child[0], from_child[1]);
        // _exit, not exit: no atexit handlers, no stdio flush of
        // buffers duplicated from the parent.
        _exit(code);
    }

    close(to_child[0]);
    close(from_child[1]);
    ChildProcess child;
    child.pid = pid;
    child.to_child = to_child[1];
    child.from_child = from_child[0];
    return child;
}

namespace {

using DeadlineClock = std::chrono::steady_clock;

/**
 * Milliseconds left until @p end, clamped to [0, INT_MAX]; -1 when no
 * deadline is armed (poll's "block forever").
 */
int
remainingMs(bool armed, DeadlineClock::time_point end)
{
    if (!armed)
        return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        end - DeadlineClock::now());
    if (left.count() <= 0)
        return 0;
    if (left.count() > 60 * 60 * 1000)
        return 60 * 60 * 1000;
    return static_cast<int>(left.count());
}

/**
 * Wait until fd is ready for @p events or the budget runs out.
 * ok = ready; the deadline Status = budget exhausted; ioError = poll
 * failed. POLLERR/POLLHUP count as ready — the following read/write
 * surfaces the real condition (EOF or EPIPE).
 */
Status
pollFd(int fd, short events, bool armed, DeadlineClock::time_point end)
{
    for (;;) {
        struct pollfd p;
        p.fd = fd;
        p.events = events;
        p.revents = 0;
        const int timeout = remainingMs(armed, end);
        if (armed && timeout == 0)
            return Status::unavailable(kDeadlineMessage);
        const int r = poll(&p, 1, timeout);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return Status::ioError(std::string("poll: ") +
                                   std::strerror(errno));
        }
        if (r == 0) {
            if (armed)
                return Status::unavailable(kDeadlineMessage);
            continue;
        }
        return {};
    }
}

} // namespace

Status
writeAllFd(int fd, const std::string& data)
{
    return writeAllFd(fd, data, -1);
}

Status
writeAllFd(int fd, const std::string& data, int deadline_ms)
{
    const bool armed = deadline_ms >= 0;
    const auto end =
        DeadlineClock::now() + std::chrono::milliseconds(
                                   armed ? deadline_ms : 0);
    std::size_t off = 0;
    while (off < data.size()) {
        // A blocking fd would park in write() past the budget, so
        // wait for writability first whenever a deadline is armed.
        if (armed) {
            if (Status s = pollFd(fd, POLLOUT, true, end); !s.ok())
                return s;
        }
        const ssize_t n =
            write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                if (Status s = pollFd(fd, POLLOUT, armed, end); !s.ok())
                    return s;
                continue;
            }
            return Status::ioError(std::string("pipe write: ") +
                                   std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }
    return {};
}

Result<std::string>
LineReader::readLine()
{
    return readLine(-1);
}

Result<std::string>
LineReader::readLine(int deadline_ms)
{
    if (poisoned_) {
        return Status::dataLoss(
            "line stream poisoned by an earlier oversized line");
    }
    const bool armed = deadline_ms >= 0;
    const auto end =
        DeadlineClock::now() + std::chrono::milliseconds(
                                   armed ? deadline_ms : 0);
    for (;;) {
        const std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos && nl <= max_line_bytes_) {
            std::string line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return line;
        }
        // No frame boundary within the bound: an oversized line is
        // over the limit whether or not its terminator has arrived
        // yet (a fast peer can deliver both in one read).
        if (nl != std::string::npos || buffer_.size() > max_line_bytes_) {
            // Past the bound there is no way to find the next frame
            // boundary again, so the whole stream is condemned.
            poisoned_ = true;
            buffer_.clear();
            return Status::dataLoss(
                "wire line exceeds the " +
                std::to_string(max_line_bytes_) + "-byte bound");
        }
        if (eof_) {
            if (!buffer_.empty()) {
                buffer_.clear();
                return Status::dataLoss(
                    "pipe closed mid-line (peer died writing)");
            }
            return Status::notFound("end of stream");
        }
        // A blocking fd would park in read() past the budget, so wait
        // for readability first whenever a deadline is armed.
        if (armed) {
            if (Status s = pollFd(fd_, POLLIN, true, end); !s.ok())
                return s;
        }
        char chunk[4096];
        const ssize_t n = read(fd_, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                if (Status s = pollFd(fd_, POLLIN, armed, end);
                    !s.ok())
                    return s;
                continue;
            }
            return Status::ioError(std::string("pipe read: ") +
                                   std::strerror(errno));
        }
        if (n == 0) {
            eof_ = true;
            continue;
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

void
closeFd(int& fd)
{
    if (fd >= 0) {
        close(fd);
        fd = -1;
    }
}

Result<int>
waitForExit(std::int64_t pid)
{
    int status = 0;
    for (;;) {
        const pid_t r = waitpid(static_cast<pid_t>(pid), &status, 0);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return Status::ioError(std::string("waitpid: ") +
                                   std::strerror(errno));
        }
        break;
    }
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    if (WIFSIGNALED(status))
        return 128 + WTERMSIG(status);
    return Status::internalError("waitpid: unexpected status " +
                                 std::to_string(status));
}

Status
killChild(std::int64_t pid)
{
    if (kill(static_cast<pid_t>(pid), SIGKILL) != 0 &&
        errno != ESRCH) {
        return Status::ioError(std::string("kill: ") +
                               std::strerror(errno));
    }
    return {};
}

#else // !GPUECC_HAS_SUBPROCESS

namespace {
Status
unsupported()
{
    return Status::unavailable(
        "child processes are not supported on this platform");
}
} // namespace

void
ignoreSigpipe()
{
}

Result<ChildProcess>
spawnChild(const std::function<int(int, int)>&,
           const std::vector<int>&)
{
    return unsupported();
}

Status
writeAllFd(int, const std::string&)
{
    return unsupported();
}

Status
writeAllFd(int, const std::string&, int)
{
    return unsupported();
}

Result<std::string>
LineReader::readLine()
{
    return unsupported();
}

Result<std::string>
LineReader::readLine(int)
{
    return unsupported();
}

void
closeFd(int& fd)
{
    fd = -1;
}

Result<int>
waitForExit(std::int64_t)
{
    return unsupported();
}

Status
killChild(std::int64_t)
{
    return unsupported();
}

#endif // GPUECC_HAS_SUBPROCESS

} // namespace gpuecc
