#include "common/subprocess.hpp"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define GPUECC_HAS_SUBPROCESS 1
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#else
#define GPUECC_HAS_SUBPROCESS 0
#endif

namespace gpuecc {

bool
subprocessSupported()
{
    return GPUECC_HAS_SUBPROCESS != 0;
}

#if GPUECC_HAS_SUBPROCESS

void
ignoreSigpipe()
{
    std::signal(SIGPIPE, SIG_IGN);
}

Result<ChildProcess>
spawnChild(
    const std::function<int(int read_fd, int write_fd)>& child_main,
    const std::vector<int>& inherited_fds)
{
    int to_child[2];   // parent writes [1], child reads [0]
    int from_child[2]; // child writes [1], parent reads [0]
    if (pipe(to_child) != 0) {
        return Status::ioError(std::string("pipe: ") +
                               std::strerror(errno));
    }
    if (pipe(from_child) != 0) {
        const int err = errno;
        close(to_child[0]);
        close(to_child[1]);
        return Status::ioError(std::string("pipe: ") +
                               std::strerror(err));
    }

    const pid_t pid = fork();
    if (pid < 0) {
        const int err = errno;
        close(to_child[0]);
        close(to_child[1]);
        close(from_child[0]);
        close(from_child[1]);
        return Status::ioError(std::string("fork: ") +
                               std::strerror(err));
    }
    if (pid == 0) {
        // Child: drop the parent ends of our own pipes and every
        // inherited sibling fd — holding a sibling's write end open
        // would hide that sibling's death from the parent (no EOF).
        close(to_child[1]);
        close(from_child[0]);
        for (const int fd : inherited_fds)
            close(fd);
        const int code = child_main(to_child[0], from_child[1]);
        // _exit, not exit: no atexit handlers, no stdio flush of
        // buffers duplicated from the parent.
        _exit(code);
    }

    close(to_child[0]);
    close(from_child[1]);
    ChildProcess child;
    child.pid = pid;
    child.to_child = to_child[1];
    child.from_child = from_child[0];
    return child;
}

Status
writeAllFd(int fd, const std::string& data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::ioError(std::string("pipe write: ") +
                                   std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }
    return {};
}

Result<std::string>
LineReader::readLine()
{
    for (;;) {
        const std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            std::string line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return line;
        }
        if (eof_) {
            if (!buffer_.empty()) {
                buffer_.clear();
                return Status::dataLoss(
                    "pipe closed mid-line (peer died writing)");
            }
            return Status::notFound("end of stream");
        }
        char chunk[4096];
        const ssize_t n = read(fd_, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::ioError(std::string("pipe read: ") +
                                   std::strerror(errno));
        }
        if (n == 0) {
            eof_ = true;
            continue;
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

void
closeFd(int& fd)
{
    if (fd >= 0) {
        close(fd);
        fd = -1;
    }
}

Result<int>
waitForExit(std::int64_t pid)
{
    int status = 0;
    for (;;) {
        const pid_t r = waitpid(static_cast<pid_t>(pid), &status, 0);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return Status::ioError(std::string("waitpid: ") +
                                   std::strerror(errno));
        }
        break;
    }
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    if (WIFSIGNALED(status))
        return 128 + WTERMSIG(status);
    return Status::internalError("waitpid: unexpected status " +
                                 std::to_string(status));
}

Status
killChild(std::int64_t pid)
{
    if (kill(static_cast<pid_t>(pid), SIGKILL) != 0 &&
        errno != ESRCH) {
        return Status::ioError(std::string("kill: ") +
                               std::strerror(errno));
    }
    return {};
}

#else // !GPUECC_HAS_SUBPROCESS

namespace {
Status
unsupported()
{
    return Status::unavailable(
        "child processes are not supported on this platform");
}
} // namespace

void
ignoreSigpipe()
{
}

Result<ChildProcess>
spawnChild(const std::function<int(int, int)>&,
           const std::vector<int>&)
{
    return unsupported();
}

Status
writeAllFd(int, const std::string&)
{
    return unsupported();
}

Result<std::string>
LineReader::readLine()
{
    return unsupported();
}

void
closeFd(int& fd)
{
    fd = -1;
}

Result<int>
waitForExit(std::int64_t)
{
    return unsupported();
}

Status
killChild(std::int64_t)
{
    return unsupported();
}

#endif // GPUECC_HAS_SUBPROCESS

} // namespace gpuecc
