/**
 * @file
 * Work-stealing thread pool for deterministic Monte Carlo campaigns.
 *
 * The campaign engine shards its work into chunks whose results are
 * independent of execution order, so the pool only has to distribute
 * chunk indices fairly: each worker owns a deque seeded with a
 * contiguous block and steals from the tail of a victim's deque when
 * its own runs dry. The calling thread participates as worker 0, and
 * a pool of one thread runs everything inline, which keeps
 * single-threaded runs free of synchronization overhead.
 *
 * Workers are identified by a dense id in [0, threadCount()) exposed
 * via currentWorker(), which keys the cache-line-aligned per-worker
 * arenas (WorkerArena) the campaign engine accumulates tallies and
 * batch buffers in: each worker mutates only its own line-aligned
 * slot, so the hot path never false-shares, and the slots are merged
 * once after the pool drains. Optionally the pool pins worker i to
 * hardware thread i % hardwareThreads() (--affinity); on platforms
 * without affinity support the request is a recorded no-op.
 */

#ifndef GPUECC_COMMON_THREAD_POOL_HPP
#define GPUECC_COMMON_THREAD_POOL_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gpuecc {

/**
 * Destructive-interference granularity the per-worker arenas pad to.
 * A fixed 64 bytes (every mainstream x86-64/AArch64 line size) rather
 * than std::hardware_destructive_interference_size, whose value is a
 * compile-flag artifact on gcc and not portable across TUs.
 */
constexpr std::size_t kCacheLineBytes = 64;

/**
 * A value padded and aligned to a whole number of cache lines, so
 * adjacent array elements can never share a line. This is the unit
 * WorkerArena hands each worker: writes to one worker's slot can't
 * invalidate a neighbour's line (false sharing).
 */
template <typename T>
struct alignas(kCacheLineBytes) CacheAligned
{
    T value{};
};

static_assert(sizeof(CacheAligned<std::uint64_t>) % kCacheLineBytes ==
                  0,
              "alignas must pad CacheAligned to whole cache lines");

/** A fixed-size work-stealing pool executing indexed loops. */
class ThreadPool
{
  public:
    /**
     * @param threads     worker count; 0 means one per hardware
     *                    thread. The calling thread is one of the
     *                    workers.
     * @param pin_workers pin worker i to hardware thread
     *                    i % hardwareThreads(); a no-op (recorded in
     *                    affinityApplied()) where unsupported. The
     *                    calling thread's original affinity mask is
     *                    restored on destruction.
     */
    explicit ThreadPool(int threads = 0, bool pin_workers = false);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool();

    /** Number of workers (including the calling thread). */
    int threadCount() const { return num_threads_; }

    /**
     * Whether worker pinning was requested AND applied. False when
     * pinning was not requested, the platform has no affinity
     * support, or any pin call failed (the pool still runs — affinity
     * is a placement hint, never a correctness requirement).
     */
    bool affinityApplied() const { return affinity_applied_; }

    /**
     * Dense id of the pool worker executing the current thread, in
     * [0, threadCount()). Only meaningful inside a parallelFor body;
     * outside one it returns 0 (the calling thread's slot), which
     * makes single-threaded helper code arena-compatible for free.
     */
    static int currentWorker();

    /** Lifetime execution counters across every parallelFor so far. */
    struct Stats
    {
        std::uint64_t tasks_executed = 0;
        /** Tasks a worker took from another worker's queue. */
        std::uint64_t steals = 0;
        /** Summed per-worker time spent inside task bodies. */
        double busy_seconds = 0.0;
        /** Wall-clock time spent inside parallelFor calls. */
        double wall_seconds = 0.0;
        /** Per-worker time inside task bodies (sums to busy_seconds). */
        std::vector<double> worker_busy_seconds;
    };

    /** Snapshot of the counters (call between loops, not during). */
    Stats stats() const;

    /**
     * Run body(i) for every i in [0, n), distributed over the pool;
     * blocks until all iterations finish. The first exception thrown
     * by any iteration is rethrown on the calling thread after the
     * loop drains. Iteration order is unspecified, so the body must
     * only produce order-independent (mergeable) results.
     */
    void parallelFor(std::uint64_t n,
                     const std::function<void(std::uint64_t)>& body);

    /** std::thread::hardware_concurrency with a floor of 1. */
    static int hardwareThreads();

    /** Map a user-facing --threads value (0 = auto) to a count. */
    static int resolveThreadCount(int requested);

  private:
    struct Worker
    {
        std::deque<std::uint64_t> queue;
        std::mutex mutex;
    };

    void workerLoop(int self);
    void drain(int self);
    bool popOwn(int self, std::uint64_t& idx);
    bool steal(int self, std::uint64_t& idx);
    void pinCallingThread();
    void pinSpawnedThread(std::thread& t, int worker);

    int num_threads_;
    bool pin_workers_ = false;
    bool affinity_applied_ = false;
    bool restore_caller_affinity_ = false;
    /** Opaque cpu_set_t storage (sched.h stays out of this header). */
    alignas(8) unsigned char caller_mask_[128] = {};
    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    // Generation gate: bumping generation_ releases the background
    // workers into drain(); remaining_ counts unfinished iterations.
    std::mutex gate_mutex_;
    std::condition_variable gate_cv_;
    std::uint64_t generation_ = 0;
    bool shutdown_ = false;

    const std::function<void(std::uint64_t)>* body_ = nullptr;
    mutable std::mutex done_mutex_;
    std::condition_variable done_cv_;
    std::uint64_t remaining_ = 0;
    /** Guarded by done_mutex_; merged from per-drain local tallies. */
    Stats stats_;

    std::mutex error_mutex_;
    std::exception_ptr first_error_;
};

/**
 * Per-worker scratch arena keyed by ThreadPool worker ids: one
 * cache-line-aligned, line-padded slot per worker, so each worker
 * mutates exclusively-owned lines during a parallelFor and the slots
 * are merged once afterwards — the false-sharing-free accumulator
 * pattern the campaign engine uses for its outcome tallies and batch
 * buffers. The arena must outlive the loops that use it and belongs
 * to exactly one pool (slot count == pool.threadCount()).
 */
template <typename T>
class WorkerArena
{
  public:
    explicit WorkerArena(const ThreadPool& pool)
        : slots_(static_cast<std::size_t>(pool.threadCount()))
    {
    }

    /** Number of worker slots. */
    int size() const { return static_cast<int>(slots_.size()); }

    /** The calling worker's slot (worker 0 outside a loop body). */
    T& local() { return slots_[ThreadPool::currentWorker()].value; }

    /** Slot of one worker (merge phase — pool must be quiescent). */
    T& at(int worker) { return slots_[worker].value; }
    const T& at(int worker) const { return slots_[worker].value; }

  private:
    std::vector<CacheAligned<T>> slots_;
};

} // namespace gpuecc

#endif // GPUECC_COMMON_THREAD_POOL_HPP
