/**
 * @file
 * Work-stealing thread pool for deterministic Monte Carlo campaigns.
 *
 * The campaign engine shards its work into chunks whose results are
 * independent of execution order, so the pool only has to distribute
 * chunk indices fairly: each worker owns a deque seeded with a
 * contiguous block and steals from the tail of a victim's deque when
 * its own runs dry. The calling thread participates as worker 0, and
 * a pool of one thread runs everything inline, which keeps
 * single-threaded runs free of synchronization overhead.
 */

#ifndef GPUECC_COMMON_THREAD_POOL_HPP
#define GPUECC_COMMON_THREAD_POOL_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gpuecc {

/** A fixed-size work-stealing pool executing indexed loops. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 means one per hardware thread.
     *                The calling thread is one of the workers.
     */
    explicit ThreadPool(int threads = 0);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool();

    /** Number of workers (including the calling thread). */
    int threadCount() const { return num_threads_; }

    /** Lifetime execution counters across every parallelFor so far. */
    struct Stats
    {
        std::uint64_t tasks_executed = 0;
        /** Tasks a worker took from another worker's queue. */
        std::uint64_t steals = 0;
        /** Summed per-worker time spent inside task bodies. */
        double busy_seconds = 0.0;
        /** Wall-clock time spent inside parallelFor calls. */
        double wall_seconds = 0.0;
    };

    /** Snapshot of the counters (call between loops, not during). */
    Stats stats() const;

    /**
     * Run body(i) for every i in [0, n), distributed over the pool;
     * blocks until all iterations finish. The first exception thrown
     * by any iteration is rethrown on the calling thread after the
     * loop drains. Iteration order is unspecified, so the body must
     * only produce order-independent (mergeable) results.
     */
    void parallelFor(std::uint64_t n,
                     const std::function<void(std::uint64_t)>& body);

    /** std::thread::hardware_concurrency with a floor of 1. */
    static int hardwareThreads();

    /** Map a user-facing --threads value (0 = auto) to a count. */
    static int resolveThreadCount(int requested);

  private:
    struct Worker
    {
        std::deque<std::uint64_t> queue;
        std::mutex mutex;
    };

    void workerLoop(int self);
    void drain(int self);
    bool popOwn(int self, std::uint64_t& idx);
    bool steal(int self, std::uint64_t& idx);

    int num_threads_;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    // Generation gate: bumping generation_ releases the background
    // workers into drain(); remaining_ counts unfinished iterations.
    std::mutex gate_mutex_;
    std::condition_variable gate_cv_;
    std::uint64_t generation_ = 0;
    bool shutdown_ = false;

    const std::function<void(std::uint64_t)>* body_ = nullptr;
    mutable std::mutex done_mutex_;
    std::condition_variable done_cv_;
    std::uint64_t remaining_ = 0;
    /** Guarded by done_mutex_; merged from per-drain local tallies. */
    Stats stats_;

    std::mutex error_mutex_;
    std::exception_ptr first_error_;
};

} // namespace gpuecc

#endif // GPUECC_COMMON_THREAD_POOL_HPP
