#include "common/codec_mode.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace gpuecc {

namespace {

int
initialBackend()
{
    const char* env = std::getenv("GPUECC_REFERENCE_CODEC");
    const bool reference =
        env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
    return static_cast<int>(reference ? CodecBackend::reference
                                      : CodecBackend::compiled);
}

std::atomic<int>&
backendState()
{
    static std::atomic<int> state{initialBackend()};
    return state;
}

} // namespace

CodecBackend
codecBackend()
{
    return static_cast<CodecBackend>(
        backendState().load(std::memory_order_relaxed));
}

void
setCodecBackend(CodecBackend backend)
{
    backendState().store(static_cast<int>(backend),
                         std::memory_order_relaxed);
}

const char*
codecBackendName()
{
    return codecBackend() == CodecBackend::reference ? "reference"
                                                     : "compiled";
}

} // namespace gpuecc
