/**
 * @file
 * Global compiled-vs-reference codec selection.
 *
 * Every codec in the library keeps two decode implementations: the
 * compiled fast path (byte-indexed parity tables and precomputed
 * syndrome->correction tables) and the original matrix/bit-by-bit
 * reference path, which is retained as the oracle the differential
 * test harness cross-checks against. The reference path is selected
 * process-wide by setting the environment variable
 * GPUECC_REFERENCE_CODEC (to anything but "0" or the empty string),
 * or programmatically via setCodecBackend() from tests and benches.
 */

#ifndef GPUECC_COMMON_CODEC_MODE_HPP
#define GPUECC_COMMON_CODEC_MODE_HPP

namespace gpuecc {

/** Which decode implementation the codecs run. */
enum class CodecBackend
{
    compiled, //!< table-lookup fast path (the default)
    reference //!< matrix / bit-by-bit oracle
};

/**
 * The active backend. First use reads GPUECC_REFERENCE_CODEC from the
 * environment; later reads are a relaxed atomic load, cheap enough
 * for per-decode dispatch.
 */
CodecBackend codecBackend();

/** Override the backend (tests, benches, differential harness). */
void setCodecBackend(CodecBackend backend);

/** "compiled" or "reference" (for reports and logs). */
const char* codecBackendName();

/** Convenience predicate used at dispatch sites. */
inline bool
useReferenceCodec()
{
    return codecBackend() == CodecBackend::reference;
}

} // namespace gpuecc

#endif // GPUECC_COMMON_CODEC_MODE_HPP
