/**
 * @file
 * Bounded lock-free multi-producer/multi-consumer queue.
 *
 * The fleet dispatcher's work-unit submission queue: campaign work
 * units are pushed by the planner (and re-pushed by a liaison whose
 * worker process died) and popped concurrently by the per-worker
 * liaison threads. The design follows the sequence-stamped ring
 * described in Engel's atomic_queue writeup (after Vyukov): every
 * cell carries an atomic sequence number that encodes, for each lap
 * of the ring, whether the cell is empty (seq == pos) or full
 * (seq == pos + 1), so producers and consumers claim cells with one
 * fetch_add each and never block one another — a stalled producer
 * delays only its own cell, and tryPush/tryPop fail fast instead of
 * spinning when the queue is full/empty.
 *
 * Progress guarantee: lock-free, not wait-free — a claimed-but-
 * unwritten cell makes later pops of that cell fail until the writer
 * finishes, but some thread always completes in a bounded number of
 * steps. Element values move through the cells, so T needs only to
 * be movable.
 */

#ifndef GPUECC_COMMON_MPMC_QUEUE_HPP
#define GPUECC_COMMON_MPMC_QUEUE_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/log.hpp"
#include "common/thread_pool.hpp"

namespace gpuecc {

/** Bounded lock-free MPMC ring; capacity is fixed at construction. */
template <typename T>
class MpmcQueue
{
  public:
    /**
     * @param min_capacity minimum number of elements the queue must
     *                     hold; rounded up to the next power of two
     *                     (the ring mask trick needs one). Must be
     *                     positive.
     */
    explicit MpmcQueue(std::size_t min_capacity)
    {
        require(min_capacity > 0,
                "MpmcQueue: capacity must be positive");
        std::size_t cap = 1;
        while (cap < min_capacity)
            cap <<= 1;
        capacity_ = cap;
        mask_ = cap - 1;
        cells_ = std::make_unique<Cell[]>(cap);
        // Lap 0: cell i is empty when its sequence equals i.
        for (std::size_t i = 0; i < cap; ++i)
            cells_[i].sequence.store(i, std::memory_order_relaxed);
        head_.value.store(0, std::memory_order_relaxed);
        tail_.value.store(0, std::memory_order_relaxed);
    }

    MpmcQueue(const MpmcQueue&) = delete;
    MpmcQueue& operator=(const MpmcQueue&) = delete;

    /** Fixed element capacity (the rounded-up power of two). */
    std::size_t capacity() const { return capacity_; }

    /**
     * Enqueue one element; false when the queue is full. Safe from
     * any number of threads concurrently with pops and other pushes.
     */
    bool tryPush(T value)
    {
        Cell* cell;
        std::uint64_t pos =
            tail_.value.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            const std::uint64_t seq =
                cell->sequence.load(std::memory_order_acquire);
            const std::int64_t diff = static_cast<std::int64_t>(seq) -
                static_cast<std::int64_t>(pos);
            if (diff == 0) {
                // Cell is empty for this lap: claim it by advancing
                // the tail. Failure means another producer won the
                // race; retry from its published position.
                if (tail_.value.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                    break;
            } else if (diff < 0) {
                // The cell still holds last lap's element: full.
                return false;
            } else {
                // Another producer claimed this position; catch up.
                pos = tail_.value.load(std::memory_order_relaxed);
            }
        }
        cell->value = std::move(value);
        // Publish: consumers read the value only after seeing pos+1.
        cell->sequence.store(pos + 1, std::memory_order_release);
        return true;
    }

    /**
     * Dequeue one element into @p out; false when the queue is
     * empty. Safe from any number of threads concurrently with
     * pushes and other pops.
     */
    bool tryPop(T& out)
    {
        Cell* cell;
        std::uint64_t pos =
            head_.value.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            const std::uint64_t seq =
                cell->sequence.load(std::memory_order_acquire);
            const std::int64_t diff = static_cast<std::int64_t>(seq) -
                static_cast<std::int64_t>(pos + 1);
            if (diff == 0) {
                // Cell is full for this lap: claim it via the head.
                if (head_.value.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                    break;
            } else if (diff < 0) {
                // The producer for this position hasn't published:
                // empty (or mid-push, which reads as empty).
                return false;
            } else {
                pos = head_.value.load(std::memory_order_relaxed);
            }
        }
        out = std::move(cell->value);
        // Mark the cell empty for the *next* lap of producers.
        cell->sequence.store(pos + mask_ + 1,
                             std::memory_order_release);
        return true;
    }

    /**
     * Elements currently enqueued, as a racy snapshot — exact only
     * when no push/pop is in flight. Telemetry (queue-depth gauge)
     * only; never a synchronization primitive.
     */
    std::size_t sizeApprox() const
    {
        const std::uint64_t tail =
            tail_.value.load(std::memory_order_relaxed);
        const std::uint64_t head =
            head_.value.load(std::memory_order_relaxed);
        return tail >= head ? static_cast<std::size_t>(tail - head)
                            : 0;
    }

  private:
    /** One ring slot: the element plus its lap-encoding sequence. */
    struct alignas(kCacheLineBytes) Cell
    {
        std::atomic<std::uint64_t> sequence{0};
        T value{};
    };

    std::size_t capacity_ = 0;
    std::uint64_t mask_ = 0;
    std::unique_ptr<Cell[]> cells_;
    /** Producers' and consumers' cursors on their own cache lines. */
    CacheAligned<std::atomic<std::uint64_t>> tail_;
    CacheAligned<std::atomic<std::uint64_t>> head_;
};

} // namespace gpuecc

#endif // GPUECC_COMMON_MPMC_QUEUE_HPP
