#include "obs/exposition.hpp"

#include <map>

namespace gpuecc::obs {

namespace {

bool
legalNameChar(char c, bool first)
{
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':')
        return true;
    return !first && c >= '0' && c <= '9';
}

/** Split "fleet.host.<id>.<rest>" into (id, rest); false otherwise. */
bool
splitHostSeries(const std::string& dotted, std::string* host,
                std::string* rest)
{
    static const std::string kPrefix = "fleet.host.";
    if (dotted.rfind(kPrefix, 0) != 0)
        return false;
    const std::size_t id_begin = kPrefix.size();
    const std::size_t id_end = dotted.find('.', id_begin);
    if (id_end == std::string::npos || id_end + 1 >= dotted.size())
        return false;
    *host = dotted.substr(id_begin, id_end - id_begin);
    *rest = dotted.substr(id_end + 1);
    return true;
}

} // namespace

std::string
prometheusName(const std::string& dotted)
{
    std::string out = "gpuecc_";
    for (char c : dotted)
        out.push_back(legalNameChar(c, false) ? c : '_');
    if (out.size() > 7 && !legalNameChar(out[7], true))
        out[7] = '_';
    return out;
}

std::string
prometheusLabelValue(const std::string& value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out.push_back(c);
    }
    return out;
}

std::string
renderPrometheusText(const std::vector<PromSample>& samples)
{
    // Group host series into families keyed by their <rest> suffix so
    // every host's sample sits under one TYPE header; plain samples
    // are single-sample families. First-appearance order throughout.
    struct Family
    {
        std::string metric;                 //!< rendered metric name
        std::vector<std::string> lines;     //!< sample lines
    };
    std::vector<Family> families;
    std::map<std::string, std::size_t> index;

    const auto family = [&](const std::string& metric) -> Family& {
        auto [it, fresh] = index.emplace(metric, families.size());
        if (fresh)
            families.push_back({metric, {}});
        return families[it->second];
    };

    for (const PromSample& s : samples) {
        std::string host;
        std::string rest;
        if (splitHostSeries(s.name, &host, &rest)) {
            const std::string metric =
                prometheusName("fleet.host." + rest);
            family(metric).lines.push_back(
                metric + "{host=\"" + prometheusLabelValue(host) +
                "\"} " + std::to_string(s.value));
        } else {
            const std::string metric = prometheusName(s.name);
            family(metric).lines.push_back(
                metric + " " + std::to_string(s.value));
        }
    }

    std::string out;
    for (const Family& f : families) {
        out += "# TYPE " + f.metric + " counter\n";
        for (const std::string& line : f.lines)
            out += line + "\n";
    }
    return out;
}

} // namespace gpuecc::obs
