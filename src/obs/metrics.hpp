/**
 * @file
 * Campaign metrics registry: counters, gauges, fixed-bucket histograms.
 *
 * The hot path (a shard worker bumping a counter or recording a shard
 * duration) must never take a lock and must never perturb campaign
 * determinism, so every thread accumulates into a private thread-local
 * shard of plain integers; shards merge into the registry's global
 * tallies when their owning thread exits (the campaign thread pool
 * joins its workers before the result is read) or when the owner calls
 * flushThisThread(). snapshot() therefore observes exactly the
 * retired/flushed shards — a quiescent point, not a torn mid-run read
 * — which keeps the whole subsystem data-race-free without a single
 * atomic on the hot path.
 *
 * Merging is plain 64-bit addition per counter and per histogram
 * bucket (gauges merge by maximum — a high-water mark), so the merged
 * totals are independent of which thread did which work and of merge
 * order: the same associativity argument the campaign tallies rest on.
 *
 * Metric registration is not thread-safe against concurrent hot-path
 * use: register every metric (counter()/gauge()/histogram()) before
 * spawning the threads that will bump it, as the campaign runner does.
 */

#ifndef GPUECC_OBS_METRICS_HPP
#define GPUECC_OBS_METRICS_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace gpuecc::obs {

/** Handle to a registered metric (an index into the registry). */
using MetricId = std::size_t;

/** One counter's merged value at snapshot time. */
struct CounterValue
{
    std::string name;
    std::uint64_t value = 0;
};

/** One gauge's merged (maximum) value at snapshot time. */
struct GaugeValue
{
    std::string name;
    std::int64_t value = 0;
    /** False until any thread has set the gauge. */
    bool set = false;
};

/** One histogram's merged bucket counts at snapshot time. */
struct HistogramValue
{
    std::string name;
    /** Inclusive upper bounds; strictly increasing. */
    std::vector<std::uint64_t> bounds;
    /**
     * counts[i] tallies observations v with v <= bounds[i] (and >
     * bounds[i-1]); counts.back() is the overflow bucket for
     * v > bounds.back(), so counts.size() == bounds.size() + 1.
     */
    std::vector<std::uint64_t> counts;

    /** Total observations across all buckets. */
    std::uint64_t total() const;
};

/** All merged metric values at one quiescent point. */
struct MetricsSnapshot
{
    std::vector<CounterValue> counters;
    std::vector<GaugeValue> gauges;
    std::vector<HistogramValue> histograms;

    /** Lookup by name; nullptr when absent. */
    const CounterValue* findCounter(const std::string& name) const;
    const HistogramValue* findHistogram(const std::string& name) const;
    const GaugeValue* findGauge(const std::string& name) const;

    /**
     * The delta of this snapshot over an earlier baseline: counters
     * and histogram buckets subtract (metrics absent from the
     * baseline pass through), gauges pass through unchanged. This is
     * how a campaign reports only its own activity when several runs
     * share one process.
     */
    MetricsSnapshot since(const MetricsSnapshot& baseline) const;
};

/** The process-wide registry; use metrics() for the instance. */
class MetricsRegistry
{
  public:
    /**
     * Register (or look up) a counter by name. Idempotent: the same
     * name always returns the same id.
     */
    MetricId counter(const std::string& name);

    /** Register (or look up) a gauge by name. */
    MetricId gauge(const std::string& name);

    /**
     * Register (or look up) a histogram with fixed inclusive upper
     * bucket bounds (strictly increasing, non-empty). Re-registering
     * an existing histogram with different bounds is an error.
     */
    MetricId histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds);

    /** Hot path: bump a counter in this thread's shard (lock-free). */
    void add(MetricId counter_id, std::uint64_t delta = 1);

    /** Hot path: set a gauge in this thread's shard (lock-free). */
    void setGauge(MetricId gauge_id, std::int64_t value);

    /** Hot path: record one observation (lock-free). */
    void observe(MetricId histogram_id, std::uint64_t value);

    /**
     * Merge the calling thread's shard into the global tallies and
     * clear it. Threads that exit merge automatically; the campaign
     * runner calls this for the pool's caller-thread worker.
     */
    void flushThisThread();

    /** Merged values of all retired/flushed shards. */
    MetricsSnapshot snapshot();

    /**
     * Zero every merged value and invalidate all live thread shards
     * (tests). Metric registrations survive.
     */
    void resetValues();

  private:
    friend struct TlsShard;
    struct Impl;
    Impl& impl();
};

/** The process-wide metrics registry. */
MetricsRegistry& metrics();

} // namespace gpuecc::obs

#endif // GPUECC_OBS_METRICS_HPP
