/**
 * @file
 * Append-only NDJSON event journal for fleet campaign lifecycles.
 *
 * Every fleet lifecycle event (connect, auth failure, unit dispatch,
 * result, requeue, heartbeat expiry, poison retirement, fallback,
 * drain) appends one bounded JSON object line carrying a schema
 * version ("v"), a monotonic sequence number ("seq"), and a
 * microsecond timestamp relative to journal open ("ts_us") — so a
 * post-mortem reader can prove it saw every event in order even when
 * the producing process died mid-campaign. Writes follow the
 * checkpoint durability discipline: each append is flushed and
 * fsync'd (write-through) before append() returns, so the journal on
 * stable storage never lies about what the dispatcher had decided.
 *
 * The writer lives in obs (common-only dependencies); the reader —
 * which needs the JSON parser — lives in fleet/journal.hpp, and
 * tools/fleet_journal is a thin CLI over it.
 */

#ifndef GPUECC_OBS_JOURNAL_HPP
#define GPUECC_OBS_JOURNAL_HPP

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace gpuecc::obs {

/** Journal schema version written as "v" on every line. */
constexpr std::uint64_t kJournalVersion = 1;

/** Thread-safe append-only NDJSON event writer. */
class EventJournal
{
  public:
    /** String fields of one event ([["agent","alpha"], ...]). */
    using Fields = std::vector<std::pair<std::string, std::string>>;
    /** Numeric fields of one event ([["unit",7], ...]). */
    using Nums = std::vector<std::pair<std::string, std::uint64_t>>;

    /**
     * Create (truncating) the journal file. Fails with a structured
     * Status when the path is unwritable; never throws.
     */
    static Result<std::unique_ptr<EventJournal>>
    open(const std::string& path);

    ~EventJournal();

    EventJournal(const EventJournal&) = delete;
    EventJournal& operator=(const EventJournal&) = delete;

    /**
     * Append one event line and push it through to stable storage.
     * Safe from any thread; events are sequenced under an internal
     * mutex so "seq" is strictly increasing in file order. A write
     * failure disables the journal (warned once) rather than failing
     * the campaign — observability must never kill the run.
     */
    void append(const std::string& event, const Fields& fields = {},
                const Nums& nums = {});

    /** Events successfully appended so far. */
    std::uint64_t eventsWritten() const;

    /** The path the journal writes to. */
    const std::string& path() const { return path_; }

  private:
    EventJournal() = default;

    std::string path_;
    std::FILE* file_ = nullptr;
    mutable std::mutex mutex_;
    std::uint64_t seq_ = 0;
    bool failed_ = false;
    std::chrono::steady_clock::time_point origin_;
};

} // namespace gpuecc::obs

#endif // GPUECC_OBS_JOURNAL_HPP
