/**
 * @file
 * Chrome trace_event spans for campaign phase/shard timing.
 *
 * startTrace() arms a process-wide collector; TraceSpan then records
 * RAII-scoped complete events ("ph":"X") into per-thread buffers, and
 * stopTraceAndWrite() serializes everything as Chrome trace-event JSON
 * that loads directly in chrome://tracing or Perfetto. When tracing is
 * off (the default) a TraceSpan is two loads and no allocation, so the
 * shard hot path can carry one unconditionally.
 *
 * Determinism: spans only read the clock and append to thread-private
 * buffers — they never touch RNG state, tallies, or task order, so a
 * traced campaign produces bit-identical results to an untraced one.
 */

#ifndef GPUECC_OBS_TRACE_HPP
#define GPUECC_OBS_TRACE_HPP

#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace gpuecc::obs {

/**
 * Arm tracing and remember the output path for stopTraceAndWrite().
 * Clears any events from a previous trace. Call before spawning the
 * threads to be traced (the campaign CLI does this during flag
 * parsing, long before the pool exists).
 */
void startTrace(const std::string& path);

/** True between startTrace() and stopTraceAndWrite(). */
bool traceEnabled();

/** The path given to startTrace(); empty when tracing never armed. */
const std::string& tracePath();

/**
 * Disarm tracing and write all recorded events to the startTrace()
 * path as Chrome trace-event JSON. No-op success when tracing was
 * never armed.
 */
Status stopTraceAndWrite();

/** Microseconds since startTrace() (0 when tracing is off). */
std::uint64_t traceNowUs();

/**
 * Emit a pre-timed complete event, for spans whose lifetime does not
 * nest in a C++ scope (e.g. the per-scheme aggregate tracks the
 * campaign runner synthesizes from atomic clocks). @p args_json is
 * either empty or a JSON object-body fragment ("\"k\":1,\"s\":\"v\"").
 * @p tid picks the Perfetto track; pass kCallerTid for this thread's.
 */
inline constexpr int kCallerTid = -1;
void emitSpan(const std::string& name, const char* category,
              std::uint64_t ts_us, std::uint64_t dur_us,
              const std::string& args_json = std::string(),
              int tid = kCallerTid);

/** Name a track (tid) in the viewer, e.g. "scheme duet". */
void setTrackName(int tid, const std::string& name);

/**
 * RAII complete-event span. Construction samples the clock; the
 * destructor records the event into this thread's buffer. All methods
 * are no-ops (and allocation-free) while tracing is off.
 */
class TraceSpan
{
  public:
    /** Zero-allocation form: both strings must outlive the span. */
    TraceSpan(const char* name, const char* category);

    /** Copying form for dynamic names. */
    TraceSpan(const std::string& name, const char* category);

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

    ~TraceSpan();

    /** Attach a string argument (shown in the viewer's detail pane). */
    TraceSpan& arg(const char* key, const std::string& value);

    /** Attach an integer argument. */
    TraceSpan& arg(const char* key, std::uint64_t value);

    /** True when this span is recording. */
    bool active() const { return active_; }

  private:
    const char* name_ = nullptr;
    std::string owned_name_;
    const char* category_ = nullptr;
    std::uint64_t start_us_ = 0;
    std::string args_;
    bool active_ = false;
};

} // namespace gpuecc::obs

#endif // GPUECC_OBS_TRACE_HPP
