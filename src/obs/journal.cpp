#include "obs/journal.hpp"

#include <cerrno>
#include <cstring>

#include "common/log.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace gpuecc::obs {

namespace {

/** Minimal JSON string escaper (obs cannot depend on sim/report). */
std::string
escaped(const std::string& text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace

Result<std::unique_ptr<EventJournal>>
EventJournal::open(const std::string& path)
{
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
        return Status::ioError("journal: cannot open " + path + ": " +
                               std::strerror(errno));
    }
    auto journal = std::unique_ptr<EventJournal>(new EventJournal());
    journal->path_ = path;
    journal->file_ = file;
    journal->origin_ = std::chrono::steady_clock::now();
    return journal;
}

EventJournal::~EventJournal()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_ != nullptr)
        std::fclose(file_);
}

void
EventJournal::append(const std::string& event, const Fields& fields,
                     const Nums& nums)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_ == nullptr || failed_)
        return;
    const std::uint64_t ts_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - origin_)
            .count());

    std::string line = "{\"v\":" + std::to_string(kJournalVersion) +
                       ",\"seq\":" + std::to_string(seq_ + 1) +
                       ",\"ts_us\":" + std::to_string(ts_us) +
                       ",\"event\":\"" + escaped(event) + "\"";
    for (const auto& [k, v] : fields)
        line += ",\"" + escaped(k) + "\":\"" + escaped(v) + "\"";
    for (const auto& [k, v] : nums)
        line += ",\"" + escaped(k) + "\":" + std::to_string(v);
    line += "}\n";

    // Write-through: the same durability discipline the checkpoint
    // writer follows, applied to an append-only stream — flush to the
    // kernel, then fsync to stable storage, before admitting the next
    // event. A failure disables the journal instead of the campaign.
    bool ok = std::fwrite(line.data(), 1, line.size(), file_) ==
                  line.size() &&
              std::fflush(file_) == 0;
#if defined(__unix__) || defined(__APPLE__)
    ok = ok && ::fsync(::fileno(file_)) == 0;
#endif
    if (!ok) {
        failed_ = true;
        warn("journal: write to " + path_ +
             " failed; journaling disabled for the rest of the run");
        return;
    }
    ++seq_;
}

std::uint64_t
EventJournal::eventsWritten() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return seq_;
}

} // namespace gpuecc::obs
