/**
 * @file
 * Live campaign progress on one rewritten stderr line.
 *
 * The reporter owns a background render thread that samples atomic
 * completion counters every ~500 ms and redraws a single status line
 * (percent done, shards, schemes, trials/s, ETA) in place. The hot
 * path — shardDone() from a pool worker — is two relaxed atomic adds,
 * so progress reporting cannot perturb campaign determinism or
 * measurably slow the shard kernel. The reporter registers a log
 * pre-line hook so any warn()/inform() clears the status line before
 * printing, then the next render repaints it.
 */

#ifndef GPUECC_OBS_PROGRESS_HPP
#define GPUECC_OBS_PROGRESS_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace gpuecc::obs {

/** When the live progress line is shown. */
enum class ProgressMode
{
    autoTty, //!< on iff stderr is a terminal
    on,
    off,
};

/**
 * The denominator side of the progress line. Shards are the unit of
 * completion (and of the percent/ETA): the planner knows the exact
 * shard count up front, whereas the trial count of an enumerable
 * pattern's shard is only discovered as the mask filter runs.
 */
struct ProgressTotals
{
    std::uint64_t shards = 0;
    std::uint64_t schemes = 0;
};

/** One sampled numerator+rate snapshot, for formatting. */
struct ProgressSample
{
    ProgressTotals totals;
    std::uint64_t shards_done = 0;
    std::uint64_t trials_done = 0;
    std::uint64_t schemes_done = 0;
    double trials_per_second = 0.0;
    /** Negative = unknown (no throughput measured yet). */
    double eta_seconds = -1.0;
};

/** Pure formatter for one status line (exposed for tests). */
std::string formatProgressLine(const ProgressSample& sample);

/** Renders the live line; safe to drive from many threads. */
class ProgressReporter
{
  public:
    /** Starts the render thread iff the mode (and TTY) says so. */
    ProgressReporter(ProgressMode mode, const ProgressTotals& totals);

    ProgressReporter(const ProgressReporter&) = delete;
    ProgressReporter& operator=(const ProgressReporter&) = delete;

    /** Stops and clears the line if still running. */
    ~ProgressReporter();

    /** True when a render thread is live. */
    bool enabled() const { return enabled_; }

    /** Record one finished shard worth @p trials samples. */
    void shardDone(std::uint64_t trials)
    {
        if (!enabled_)
            return;
        shards_done_.fetch_add(1, std::memory_order_relaxed);
        trials_done_.fetch_add(trials, std::memory_order_relaxed);
    }

    /**
     * Record @p shards shards settled without running any trials — a
     * failed cell's units skipped at claim time, a poison unit
     * retired at the requeue cap. Without these the fleet status line
     * freezes short of 100% whenever a unit retires through a failure
     * path instead of completing.
     */
    void shardsSkipped(std::uint64_t shards)
    {
        if (!enabled_)
            return;
        shards_done_.fetch_add(shards, std::memory_order_relaxed);
    }

    /** Record one scheme fully evaluated. */
    void schemeDone()
    {
        if (!enabled_)
            return;
        schemes_done_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Join the render thread and erase the status line. */
    void stop();

    /** The counters as one consistent sample (exposed for tests). */
    ProgressSample sample() const { return sampleNow(); }

  private:
    void renderLoop();
    ProgressSample sampleNow() const;

    ProgressTotals totals_;
    bool enabled_ = false;
    std::atomic<std::uint64_t> shards_done_{0};
    std::atomic<std::uint64_t> trials_done_{0};
    std::atomic<std::uint64_t> schemes_done_{0};
    std::chrono::steady_clock::time_point start_;
    std::mutex stop_mutex_;
    std::condition_variable stop_cv_;
    bool stopping_ = false;
    std::thread thread_;
};

} // namespace gpuecc::obs

#endif // GPUECC_OBS_PROGRESS_HPP
