/**
 * @file
 * Prometheus text exposition for campaign metrics.
 *
 * Pure rendering: dotted metric names ("fleet.units_settled") become
 * Prometheus-legal names ("gpuecc_fleet_units_settled"), and the
 * host-labelled series the fleet dispatcher aggregates
 * ("fleet.host.<id>.<rest>") become one metric family per <rest> with
 * a host label ("gpuecc_fleet_host_<rest>{host=\"<id>\"}") so a
 * scrape can sum per-host unit counters across the fleet. No I/O and
 * no registry access here — the caller (net/obs_http's handler)
 * passes a consistent sample set and this module only formats it,
 * which is what keeps the live endpoint incapable of perturbing
 * campaign determinism.
 */

#ifndef GPUECC_OBS_EXPOSITION_HPP
#define GPUECC_OBS_EXPOSITION_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace gpuecc::obs {

/** One counter sample under its dotted internal name. */
struct PromSample
{
    std::string name; //!< dotted, e.g. "fleet.host.alpha.units"
    std::uint64_t value = 0;
};

/**
 * A dotted name as a Prometheus metric name: prefixed "gpuecc_", dots
 * and every other illegal character mapped to '_'.
 */
std::string prometheusName(const std::string& dotted);

/**
 * Escape a label value per the exposition format (backslash, quote,
 * newline).
 */
std::string prometheusLabelValue(const std::string& value);

/**
 * Render samples as Prometheus text format (version 0.0.4). Samples
 * named "fleet.host.<id>.<rest>" are grouped into one family per
 * <rest> with a host="<id>" label; everything else renders as a plain
 * counter. Families keep first-appearance order; a "# TYPE ... counter"
 * header precedes each family.
 */
std::string
renderPrometheusText(const std::vector<PromSample>& samples);

} // namespace gpuecc::obs

#endif // GPUECC_OBS_EXPOSITION_HPP
