#include "obs/progress.hpp"

#include <cstdio>

#include <unistd.h>

#include "common/log.hpp"

namespace gpuecc::obs {

namespace {

/** Pre-line hook: erase the status line so a log line lands clean. */
void
clearProgressLine()
{
    std::fputs("\r\x1b[K", stderr);
}

std::string
formatRate(double per_second)
{
    char buf[32];
    if (per_second >= 1e9)
        std::snprintf(buf, sizeof buf, "%.2fG", per_second * 1e-9);
    else if (per_second >= 1e6)
        std::snprintf(buf, sizeof buf, "%.2fM", per_second * 1e-6);
    else if (per_second >= 1e3)
        std::snprintf(buf, sizeof buf, "%.1fk", per_second * 1e-3);
    else
        std::snprintf(buf, sizeof buf, "%.0f", per_second);
    return buf;
}

std::string
formatEta(double seconds)
{
    if (seconds < 0.0)
        return "--";
    const auto total = static_cast<std::uint64_t>(seconds + 0.5);
    char buf[48];
    if (total >= 3600) {
        std::snprintf(buf, sizeof buf, "%lluh%02llum",
                      static_cast<unsigned long long>(total / 3600),
                      static_cast<unsigned long long>(total / 60 %
                                                      60));
    } else if (total >= 60) {
        std::snprintf(buf, sizeof buf, "%llum%02llus",
                      static_cast<unsigned long long>(total / 60),
                      static_cast<unsigned long long>(total % 60));
    } else {
        std::snprintf(buf, sizeof buf, "%llus",
                      static_cast<unsigned long long>(total));
    }
    return buf;
}

} // namespace

std::string
formatProgressLine(const ProgressSample& sample)
{
    double fraction =
        sample.totals.shards > 0
            ? static_cast<double>(sample.shards_done) /
                  static_cast<double>(sample.totals.shards)
            : 0.0;
    if (fraction > 1.0)
        fraction = 1.0;
    char head[32];
    std::snprintf(head, sizeof head, "[%5.1f%%]", fraction * 100.0);
    std::string line = head;
    line += " shards ";
    line += std::to_string(sample.shards_done);
    line += "/";
    line += std::to_string(sample.totals.shards);
    line += "  schemes ";
    line += std::to_string(sample.schemes_done);
    line += "/";
    line += std::to_string(sample.totals.schemes);
    line += "  ";
    line += formatRate(sample.trials_per_second);
    line += " trials/s  eta ";
    line += formatEta(sample.eta_seconds);
    return line;
}

ProgressReporter::ProgressReporter(ProgressMode mode,
                                   const ProgressTotals& totals)
    : totals_(totals)
{
    switch (mode) {
      case ProgressMode::off:
        return;
      case ProgressMode::autoTty:
        if (::isatty(STDERR_FILENO) == 0)
            return;
        break;
      case ProgressMode::on:
        break;
    }
    enabled_ = true;
    start_ = std::chrono::steady_clock::now();
    setLogPreLineHook(&clearProgressLine);
    thread_ = std::thread([this] { renderLoop(); });
}

ProgressReporter::~ProgressReporter()
{
    stop();
}

ProgressSample
ProgressReporter::sampleNow() const
{
    ProgressSample sample;
    sample.totals = totals_;
    sample.shards_done =
        shards_done_.load(std::memory_order_relaxed);
    sample.trials_done =
        trials_done_.load(std::memory_order_relaxed);
    sample.schemes_done =
        schemes_done_.load(std::memory_order_relaxed);
    const double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start_)
            .count();
    if (elapsed > 0.0 && sample.trials_done > 0) {
        sample.trials_per_second =
            static_cast<double>(sample.trials_done) / elapsed;
    }
    // ETA extrapolates from shards, the unit whose total is exact.
    if (elapsed > 0.0 && sample.shards_done > 0) {
        sample.eta_seconds =
            sample.totals.shards > sample.shards_done
                ? static_cast<double>(sample.totals.shards -
                                      sample.shards_done) *
                      elapsed /
                      static_cast<double>(sample.shards_done)
                : 0.0;
    }
    return sample;
}

void
ProgressReporter::renderLoop()
{
    std::unique_lock<std::mutex> lock(stop_mutex_);
    for (;;) {
        stop_cv_.wait_for(lock, std::chrono::milliseconds(500),
                          [this] { return stopping_; });
        if (stopping_)
            return;
        const std::string line = formatProgressLine(sampleNow());
        std::lock_guard<std::mutex> log_lock(logMutex());
        std::fputs("\r", stderr);
        std::fputs(line.c_str(), stderr);
        std::fputs("\x1b[K", stderr);
        std::fflush(stderr);
    }
}

void
ProgressReporter::stop()
{
    if (!enabled_)
        return;
    {
        std::lock_guard<std::mutex> lock(stop_mutex_);
        stopping_ = true;
    }
    stop_cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
    setLogPreLineHook(nullptr);
    {
        std::lock_guard<std::mutex> log_lock(logMutex());
        clearProgressLine();
        std::fflush(stderr);
    }
    enabled_ = false;
}

} // namespace gpuecc::obs
