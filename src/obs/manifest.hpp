/**
 * @file
 * Run manifests: the provenance block embedded in every report.
 *
 * A BENCH_*.json artifact is only comparable to another when both say
 * what produced them — build type, compiler, hardware, thread count,
 * codec backend, chaos configuration. RunManifest gathers those facts;
 * PoolTelemetry and SchemeTiming carry the measured side (where the
 * time went). Serialization to JSON lives in sim/report (obs depends
 * only on common), and tools/compare_runs consumes the result.
 */

#ifndef GPUECC_OBS_MANIFEST_HPP
#define GPUECC_OBS_MANIFEST_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gpuecc::obs {

/** Compile- and host-environment facts, captured once per process. */
struct BuildInfo
{
    std::string build_type; //!< CMAKE_BUILD_TYPE baked in at compile
    std::string compiler;   //!< e.g. "g++ 13.2.0"
    std::string platform;   //!< e.g. "Linux 6.8.0 x86_64"
    int hardware_threads = 0;
};

/** The current process's BuildInfo. */
BuildInfo buildInfo();

/** Thread-pool utilization over one campaign (from ThreadPool). */
struct PoolTelemetry
{
    int threads = 0;
    std::uint64_t tasks_executed = 0;
    std::uint64_t steals = 0;
    /** Summed per-worker time inside task bodies. */
    double busy_seconds = 0.0;
    /** Wall time the pool spent inside parallelFor. */
    double wall_seconds = 0.0;
    /** Whether worker CPU pinning was requested and took effect. */
    bool affinity = false;
    /** Per-worker busy time (index = worker id; sums to busy). */
    std::vector<double> worker_busy_seconds;

    /** busy / (wall * threads), clamped to [0, 1]. */
    double utilization() const;

    /** 1 - utilization(). */
    double idleFraction() const;

    /** One worker's busy / wall, clamped to [0, 1]. */
    double workerUtilization(std::size_t worker) const;
};

/** Where one scheme's evaluation time went. */
struct SchemeTiming
{
    std::string scheme_id;
    /** First shard start to last shard end (overlaps other schemes). */
    double wall_seconds = 0.0;
    /** Summed in-shard compute time across workers. */
    double cpu_seconds = 0.0;
    std::uint64_t shards = 0;
    std::uint64_t trials = 0;
};

/** One fleet worker process's execution record (audit trail). */
struct FleetWorkerRecord
{
    int worker = 0;         //!< dense worker index
    std::int64_t pid = 0;   //!< OS process id (provenance only)
    std::uint64_t units = 0;  //!< work units completed
    std::uint64_t shards = 0; //!< shard tasks inside those units
    std::uint64_t trials = 0;
    /** In-worker evaluation time (its own clock, summed per unit). */
    double busy_seconds = 0.0;
    /** Exit code (128 + signal for a signalled death). */
    int exit_code = 0;
    /** Died (or broke protocol) before the queue drained. */
    bool lost = false;
    /** Served over a socket by a remote agent (pid is meaningless). */
    bool remote = false;
    /** Remote agent's self-reported name ("" for local workers). */
    std::string agent;
};

/** Fleet-level execution telemetry (workers == 0: in-process run). */
struct FleetTelemetry
{
    int workers = 0;
    std::uint64_t units = 0;        //!< work units in the plan
    std::uint64_t unit_shards = 0;  //!< shard tasks per unit (max)
    std::uint64_t queue_capacity = 0;
    /** Units re-queued after a worker died mid-unit. */
    std::uint64_t requeues = 0;
    std::uint64_t workers_lost = 0;
    /** Shard tasks the parent evaluated itself (all workers lost). */
    std::uint64_t parent_fallback_shards = 0;
    /** Units retired at the requeue-attempt cap (cell failed). */
    std::uint64_t units_poisoned = 0;
    /** Late/duplicated result lines discarded by idempotent merge. */
    std::uint64_t duplicate_results = 0;
    /** Hosts retired by the in-flight unit deadline. */
    std::uint64_t worker_timeouts = 0;
    /** Remote agents retired for wire silence (missed heartbeats). */
    std::uint64_t heartbeat_expiries = 0;
    /** Remote agent connections accepted (reconnects count again). */
    std::uint64_t agents_connected = 0;
    /** Connections rejected by the shared-secret handshake. */
    std::uint64_t auth_failures = 0;
    std::vector<FleetWorkerRecord> worker_records;
};

/** Provenance block embedded in reports and checkpoints. */
struct RunManifest
{
    std::string tool; //!< producing binary, e.g. "bench_tab2"
    BuildInfo build;
    int threads = 0;
    std::string codec_backend;
    /** Dispatched gf256 vector ISA ("avx2", "ssse3", "neon",
        "scalar"); "" for tools predating the SIMD RS path. */
    std::string simd_isa;
    std::string chaos; //!< GPUECC_CHAOS env text, "" when unset
    std::uint64_t samples = 0;
    std::uint64_t seed = 0;
    std::uint64_t chunk = 0;
    /** Fleet worker processes (0 = in-process execution). */
    int fleet_workers = 0;
    /** Whether worker CPU pinning was requested and took effect. */
    bool affinity = false;
    std::vector<std::string> schemes;
    bool traced = false;
    /**
     * Per-host execution records for fleet runs (empty otherwise, so
     * in-process manifests keep their pre-fleet shape byte-for-byte).
     * tools/compare_runs diffs this section with older-baseline
     * tolerance: a baseline without it compares clean.
     */
    std::vector<FleetWorkerRecord> hosts;
};

/** The GPUECC_CHAOS environment text ("" when unset). */
std::string chaosEnvText();

/** Short name of the running binary (e.g. "bench_tab2"). */
std::string toolName();

/** CPU seconds this process has consumed (user + system). */
double processCpuSeconds();

/**
 * CPU seconds consumed by reaped child processes (user + system) —
 * how a fleet campaign's worker compute shows up in the parent's
 * timing section. 0 where the platform can't report it.
 */
double processChildrenCpuSeconds();

} // namespace gpuecc::obs

#endif // GPUECC_OBS_MANIFEST_HPP
