#include "obs/manifest.hpp"

#include <cerrno>
#include <cstdlib>
#include <thread>

#include <sys/resource.h>
#include <sys/utsname.h>

#ifndef GPUECC_BUILD_TYPE
#define GPUECC_BUILD_TYPE "unknown"
#endif

namespace gpuecc::obs {

namespace {

std::string
compilerString()
{
#if defined(__clang__)
    return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    return std::string("gcc ") + __VERSION__;
#else
    return "unknown";
#endif
}

std::string
platformString()
{
    struct utsname u = {};
    if (::uname(&u) != 0)
        return "unknown";
    return std::string(u.sysname) + " " + u.release + " " + u.machine;
}

} // namespace

BuildInfo
buildInfo()
{
    BuildInfo info;
    info.build_type = GPUECC_BUILD_TYPE;
    info.compiler = compilerString();
    info.platform = platformString();
    const unsigned hw = std::thread::hardware_concurrency();
    info.hardware_threads = hw == 0 ? 1 : static_cast<int>(hw);
    return info;
}

double
PoolTelemetry::utilization() const
{
    if (threads <= 0 || wall_seconds <= 0.0)
        return 0.0;
    const double u = busy_seconds / (wall_seconds * threads);
    if (u < 0.0)
        return 0.0;
    return u > 1.0 ? 1.0 : u;
}

double
PoolTelemetry::idleFraction() const
{
    return 1.0 - utilization();
}

double
PoolTelemetry::workerUtilization(std::size_t worker) const
{
    if (worker >= worker_busy_seconds.size() || wall_seconds <= 0.0)
        return 0.0;
    const double u = worker_busy_seconds[worker] / wall_seconds;
    if (u < 0.0)
        return 0.0;
    return u > 1.0 ? 1.0 : u;
}

std::string
toolName()
{
    // glibc keeps the basename of argv[0] here; no plumbing needed.
    const char* name = program_invocation_short_name;
    return name == nullptr || *name == '\0' ? std::string("unknown")
                                            : std::string(name);
}

std::string
chaosEnvText()
{
    const char* env = std::getenv("GPUECC_CHAOS");
    return env == nullptr ? std::string() : std::string(env);
}

double
processCpuSeconds()
{
    struct rusage usage = {};
    if (::getrusage(RUSAGE_SELF, &usage) != 0)
        return 0.0;
    const auto seconds = [](const struct timeval& tv) {
        return static_cast<double>(tv.tv_sec) +
               static_cast<double>(tv.tv_usec) * 1e-6;
    };
    return seconds(usage.ru_utime) + seconds(usage.ru_stime);
}

double
processChildrenCpuSeconds()
{
    struct rusage usage = {};
    if (::getrusage(RUSAGE_CHILDREN, &usage) != 0)
        return 0.0;
    const auto seconds = [](const struct timeval& tv) {
        return static_cast<double>(tv.tv_sec) +
               static_cast<double>(tv.tv_usec) * 1e-6;
    };
    return seconds(usage.ru_utime) + seconds(usage.ru_stime);
}

} // namespace gpuecc::obs
