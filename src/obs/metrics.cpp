#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "common/log.hpp"
#include "common/thread_pool.hpp"

namespace gpuecc::obs {

namespace {

/** Metric kind, packed into the low bits of a MetricId. */
enum Kind : std::size_t
{
    kCounter = 0,
    kGauge = 1,
    kHistogram = 2,
};

constexpr MetricId
packId(Kind kind, std::size_t index)
{
    return (index << 2) | static_cast<std::size_t>(kind);
}

constexpr Kind
kindOf(MetricId id)
{
    return static_cast<Kind>(id & 3);
}

constexpr std::size_t
indexOf(MetricId id)
{
    return id >> 2;
}

} // namespace

struct GaugeState
{
    std::int64_t value = 0;
    bool set = false;
};

/**
 * One thread's private, lock-free accumulation buffers.
 *
 * False-sharing audit (execution-core refactor): the shard lives in
 * thread_local storage and its vector payloads come from the owning
 * thread's allocator, so no other thread ever writes the lines this
 * thread's hot path reads or writes — the only cross-thread touch is
 * the mutex-guarded merge at thread exit / flush. The alignment
 * below additionally keeps the shard header (epoch + vector heads,
 * mutated on every add/observe) off any line the TLS segment might
 * pack another thread-shared object into.
 */
struct alignas(kCacheLineBytes) Shard
{
    /** Registry epoch the buffers belong to; 0 = empty. */
    std::uint64_t epoch = 0;
    std::vector<std::uint64_t> counters;
    std::vector<GaugeState> gauges;
    std::vector<std::vector<std::uint64_t>> histograms;

    void clear()
    {
        epoch = 0;
        counters.clear();
        gauges.clear();
        histograms.clear();
    }
};

struct MetricsRegistry::Impl
{
    std::mutex mutex;

    // Registration metadata. Guarded by mutex for registration; the
    // hot path reads it unlocked under the register-before-spawn
    // contract documented in the header.
    std::vector<std::string> counter_names;
    std::vector<std::string> gauge_names;
    std::vector<std::string> histogram_names;
    std::vector<std::vector<std::uint64_t>> histogram_bounds;

    // Merged tallies of retired/flushed shards; guarded by mutex.
    std::vector<std::uint64_t> counters;
    std::vector<GaugeState> gauges;
    std::vector<std::vector<std::uint64_t>> histograms;

    /** Bumped by resetValues() to invalidate live thread shards. */
    std::atomic<std::uint64_t> epoch{1};

    void mergeLocked(Shard& shard)
    {
        if (shard.epoch == epoch.load(std::memory_order_relaxed)) {
            if (counters.size() < shard.counters.size())
                counters.resize(shard.counters.size(), 0);
            for (std::size_t i = 0; i < shard.counters.size(); ++i)
                counters[i] += shard.counters[i];
            if (gauges.size() < shard.gauges.size())
                gauges.resize(shard.gauges.size());
            for (std::size_t i = 0; i < shard.gauges.size(); ++i) {
                const GaugeState& g = shard.gauges[i];
                if (!g.set)
                    continue;
                if (!gauges[i].set || g.value > gauges[i].value)
                    gauges[i] = g;
                gauges[i].set = true;
            }
            if (histograms.size() < shard.histograms.size())
                histograms.resize(shard.histograms.size());
            for (std::size_t i = 0; i < shard.histograms.size();
                 ++i) {
                const auto& src = shard.histograms[i];
                auto& dst = histograms[i];
                if (dst.size() < src.size())
                    dst.resize(src.size(), 0);
                for (std::size_t b = 0; b < src.size(); ++b)
                    dst[b] += src[b];
            }
        }
        shard.clear();
    }
};

MetricsRegistry::Impl&
MetricsRegistry::impl()
{
    // Leaked singleton: thread-local shards merge here from worker
    // destructors, so the state must outlive every thread teardown
    // order the runtime can produce.
    static Impl* instance = new Impl;
    return *instance;
}

/** Merges this thread's shard into the registry when it dies. */
struct TlsShard
{
    Shard shard;

    ~TlsShard()
    {
        MetricsRegistry::Impl& im = metrics().impl();
        std::lock_guard<std::mutex> lock(im.mutex);
        im.mergeLocked(shard);
    }

    static Shard& forThread(MetricsRegistry::Impl& im)
    {
        thread_local TlsShard holder;
        const std::uint64_t epoch =
            im.epoch.load(std::memory_order_relaxed);
        if (holder.shard.epoch != epoch) {
            holder.shard.clear();
            holder.shard.epoch = epoch;
        }
        return holder.shard;
    }
};

std::uint64_t
HistogramValue::total() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t c : counts)
        sum += c;
    return sum;
}

const CounterValue*
MetricsSnapshot::findCounter(const std::string& name) const
{
    for (const CounterValue& c : counters) {
        if (c.name == name)
            return &c;
    }
    return nullptr;
}

const HistogramValue*
MetricsSnapshot::findHistogram(const std::string& name) const
{
    for (const HistogramValue& h : histograms) {
        if (h.name == name)
            return &h;
    }
    return nullptr;
}

const GaugeValue*
MetricsSnapshot::findGauge(const std::string& name) const
{
    for (const GaugeValue& g : gauges) {
        if (g.name == name)
            return &g;
    }
    return nullptr;
}

MetricsSnapshot
MetricsSnapshot::since(const MetricsSnapshot& baseline) const
{
    MetricsSnapshot out = *this;
    for (CounterValue& c : out.counters) {
        if (const CounterValue* b = baseline.findCounter(c.name)) {
            require(c.value >= b->value,
                    "metrics: counter " + c.name +
                        " ran backwards across snapshots");
            c.value -= b->value;
        }
    }
    for (HistogramValue& h : out.histograms) {
        const HistogramValue* b = baseline.findHistogram(h.name);
        if (b == nullptr)
            continue;
        for (std::size_t i = 0;
             i < h.counts.size() && i < b->counts.size(); ++i) {
            require(h.counts[i] >= b->counts[i],
                    "metrics: histogram " + h.name +
                        " ran backwards across snapshots");
            h.counts[i] -= b->counts[i];
        }
    }
    return out;
}

MetricId
MetricsRegistry::counter(const std::string& name)
{
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    for (std::size_t i = 0; i < im.counter_names.size(); ++i) {
        if (im.counter_names[i] == name)
            return packId(kCounter, i);
    }
    im.counter_names.push_back(name);
    return packId(kCounter, im.counter_names.size() - 1);
}

MetricId
MetricsRegistry::gauge(const std::string& name)
{
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    for (std::size_t i = 0; i < im.gauge_names.size(); ++i) {
        if (im.gauge_names[i] == name)
            return packId(kGauge, i);
    }
    im.gauge_names.push_back(name);
    return packId(kGauge, im.gauge_names.size() - 1);
}

MetricId
MetricsRegistry::histogram(const std::string& name,
                           std::vector<std::uint64_t> bounds)
{
    require(!bounds.empty(),
            "metrics: histogram " + name + " needs bucket bounds");
    require(std::is_sorted(bounds.begin(), bounds.end()) &&
                std::adjacent_find(bounds.begin(), bounds.end()) ==
                    bounds.end(),
            "metrics: histogram " + name +
                " bounds must be strictly increasing");
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    for (std::size_t i = 0; i < im.histogram_names.size(); ++i) {
        if (im.histogram_names[i] == name) {
            require(im.histogram_bounds[i] == bounds,
                    "metrics: histogram " + name +
                        " re-registered with different bounds");
            return packId(kHistogram, i);
        }
    }
    im.histogram_names.push_back(name);
    im.histogram_bounds.push_back(std::move(bounds));
    return packId(kHistogram, im.histogram_names.size() - 1);
}

void
MetricsRegistry::add(MetricId counter_id, std::uint64_t delta)
{
    require(kindOf(counter_id) == kCounter,
            "metrics: add() needs a counter id");
    Shard& shard = TlsShard::forThread(impl());
    const std::size_t idx = indexOf(counter_id);
    if (shard.counters.size() <= idx)
        shard.counters.resize(idx + 1, 0);
    shard.counters[idx] += delta;
}

void
MetricsRegistry::setGauge(MetricId gauge_id, std::int64_t value)
{
    require(kindOf(gauge_id) == kGauge,
            "metrics: setGauge() needs a gauge id");
    Shard& shard = TlsShard::forThread(impl());
    const std::size_t idx = indexOf(gauge_id);
    if (shard.gauges.size() <= idx)
        shard.gauges.resize(idx + 1);
    shard.gauges[idx] = {value, true};
}

void
MetricsRegistry::observe(MetricId histogram_id, std::uint64_t value)
{
    require(kindOf(histogram_id) == kHistogram,
            "metrics: observe() needs a histogram id");
    Impl& im = impl();
    Shard& shard = TlsShard::forThread(im);
    const std::size_t idx = indexOf(histogram_id);
    // Safe unlocked under the register-before-spawn contract.
    const std::vector<std::uint64_t>& bounds =
        im.histogram_bounds[idx];
    if (shard.histograms.size() <= idx)
        shard.histograms.resize(idx + 1);
    auto& counts = shard.histograms[idx];
    if (counts.size() < bounds.size() + 1)
        counts.resize(bounds.size() + 1, 0);
    const std::size_t bucket =
        std::lower_bound(bounds.begin(), bounds.end(), value) -
        bounds.begin();
    counts[bucket] += 1;
}

void
MetricsRegistry::flushThisThread()
{
    Impl& im = impl();
    Shard& shard = TlsShard::forThread(im);
    std::lock_guard<std::mutex> lock(im.mutex);
    im.mergeLocked(shard);
}

MetricsSnapshot
MetricsRegistry::snapshot()
{
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    MetricsSnapshot out;
    out.counters.reserve(im.counter_names.size());
    for (std::size_t i = 0; i < im.counter_names.size(); ++i) {
        out.counters.push_back(
            {im.counter_names[i],
             i < im.counters.size() ? im.counters[i] : 0});
    }
    out.gauges.reserve(im.gauge_names.size());
    for (std::size_t i = 0; i < im.gauge_names.size(); ++i) {
        const GaugeState g =
            i < im.gauges.size() ? im.gauges[i] : GaugeState{};
        out.gauges.push_back({im.gauge_names[i], g.value, g.set});
    }
    out.histograms.reserve(im.histogram_names.size());
    for (std::size_t i = 0; i < im.histogram_names.size(); ++i) {
        HistogramValue h;
        h.name = im.histogram_names[i];
        h.bounds = im.histogram_bounds[i];
        h.counts.assign(h.bounds.size() + 1, 0);
        if (i < im.histograms.size()) {
            for (std::size_t b = 0;
                 b < im.histograms[i].size() && b < h.counts.size();
                 ++b)
                h.counts[b] = im.histograms[i][b];
        }
        out.histograms.push_back(std::move(h));
    }
    return out;
}

void
MetricsRegistry::resetValues()
{
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    im.counters.clear();
    im.gauges.clear();
    im.histograms.clear();
    // Live shards notice the new epoch on their next access and
    // discard what they were holding.
    im.epoch.fetch_add(1, std::memory_order_relaxed);
}

MetricsRegistry&
metrics()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace gpuecc::obs
