#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include <unistd.h>

namespace gpuecc::obs {

namespace {

using Clock = std::chrono::steady_clock;

struct Event
{
    std::string name;
    std::string category;
    std::uint64_t ts_us = 0;
    std::uint64_t dur_us = 0;
    std::string args;
    /** kCallerTid = use the owning buffer's tid. */
    int tid = kCallerTid;
};

/** One thread's event buffer; appended under its own mutex. */
struct ThreadBuffer
{
    std::mutex mutex;
    std::vector<Event> events;
    int tid = 0;
};

struct TraceState
{
    std::mutex mutex;
    std::string path;
    Clock::time_point origin;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    std::map<int, std::string> track_names;
    int next_tid = 1;
};

/** Fast-path gate read by every span without locking. */
std::atomic<bool> g_enabled{false};

TraceState&
state()
{
    // Leaked: worker thread_locals may outlive main's statics.
    static TraceState* s = new TraceState;
    return *s;
}

ThreadBuffer&
bufferForThread()
{
    thread_local std::shared_ptr<ThreadBuffer> tls;
    if (!tls) {
        tls = std::make_shared<ThreadBuffer>();
        TraceState& s = state();
        std::lock_guard<std::mutex> lock(s.mutex);
        tls->tid = s.next_tid++;
        s.buffers.push_back(tls);
    }
    return *tls;
}

void
record(Event event)
{
    ThreadBuffer& buf = bufferForThread();
    std::lock_guard<std::mutex> lock(buf.mutex);
    buf.events.push_back(std::move(event));
}

void
appendJsonEscaped(std::string& out, const std::string& text)
{
    for (char ch : text) {
        const auto u = static_cast<unsigned char>(ch);
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (u < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof hex, "\\u%04x", u);
                out += hex;
            } else {
                out += ch;
            }
        }
    }
}

void
appendMetaEvent(std::string& out, int pid, int tid,
                const std::string& name, bool& first)
{
    if (!first)
        out += ",\n";
    first = false;
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":";
    out += std::to_string(tid);
    out += ",\"args\":{\"name\":\"";
    appendJsonEscaped(out, name);
    out += "\"}}";
}

void
appendCompleteEvent(std::string& out, int pid, int tid,
                    const Event& event, bool& first)
{
    if (!first)
        out += ",\n";
    first = false;
    out += "{\"ph\":\"X\",\"name\":\"";
    appendJsonEscaped(out, event.name);
    out += "\",\"cat\":\"";
    appendJsonEscaped(out, event.category);
    out += "\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":";
    out += std::to_string(tid);
    out += ",\"ts\":";
    out += std::to_string(event.ts_us);
    out += ",\"dur\":";
    out += std::to_string(event.dur_us);
    if (!event.args.empty()) {
        out += ",\"args\":{";
        out += event.args; // pre-encoded object body
        out += "}";
    }
    out += "}";
}

void
appendArg(std::string& args, const char* key,
          const std::string& encoded_value)
{
    if (!args.empty())
        args += ",";
    args += "\"";
    args += key;
    args += "\":";
    args += encoded_value;
}

} // namespace

void
startTrace(const std::string& path)
{
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.path = path;
    s.origin = Clock::now();
    s.track_names.clear();
    for (const auto& buf : s.buffers) {
        std::lock_guard<std::mutex> buf_lock(buf->mutex);
        buf->events.clear();
    }
    g_enabled.store(true, std::memory_order_release);
}

bool
traceEnabled()
{
    return g_enabled.load(std::memory_order_acquire);
}

const std::string&
tracePath()
{
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.path;
}

std::uint64_t
traceNowUs()
{
    if (!traceEnabled())
        return 0;
    const Clock::time_point origin = [] {
        TraceState& s = state();
        std::lock_guard<std::mutex> lock(s.mutex);
        return s.origin;
    }();
    const auto delta = Clock::now() - origin;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(delta)
            .count());
}

void
emitSpan(const std::string& name, const char* category,
         std::uint64_t ts_us, std::uint64_t dur_us,
         const std::string& args_json, int tid)
{
    if (!traceEnabled())
        return;
    Event event;
    event.name = name;
    event.category = category;
    event.ts_us = ts_us;
    event.dur_us = dur_us;
    event.args = args_json;
    event.tid = tid;
    record(std::move(event));
}

void
setTrackName(int tid, const std::string& name)
{
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.track_names[tid] = name;
}

Status
stopTraceAndWrite()
{
    if (!traceEnabled())
        return Status();
    g_enabled.store(false, std::memory_order_release);

    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    const int pid = static_cast<int>(::getpid());

    std::string out;
    out.reserve(1 << 16);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;
    for (const auto& buf : s.buffers) {
        std::lock_guard<std::mutex> buf_lock(buf->mutex);
        if (buf->events.empty())
            continue;
        if (s.track_names.find(buf->tid) == s.track_names.end()) {
            appendMetaEvent(out, pid, buf->tid,
                            "thread-" + std::to_string(buf->tid),
                            first);
        }
    }
    for (const auto& [tid, name] : s.track_names)
        appendMetaEvent(out, pid, tid, name, first);
    for (const auto& buf : s.buffers) {
        std::lock_guard<std::mutex> buf_lock(buf->mutex);
        for (const Event& event : buf->events) {
            const int tid =
                event.tid == kCallerTid ? buf->tid : event.tid;
            appendCompleteEvent(out, pid, tid, event, first);
        }
        buf->events.clear();
    }
    out += "\n]}\n";

    std::FILE* file = std::fopen(s.path.c_str(), "wb");
    if (file == nullptr)
        return Status::ioError("cannot open trace file " + s.path);
    const std::size_t written =
        std::fwrite(out.data(), 1, out.size(), file);
    const bool flushed = std::fclose(file) == 0;
    if (written != out.size() || !flushed)
        return Status::ioError("cannot write trace file " + s.path);
    return Status();
}

TraceSpan::TraceSpan(const char* name, const char* category)
{
    if (!traceEnabled())
        return;
    name_ = name;
    category_ = category;
    start_us_ = traceNowUs();
    active_ = true;
}

TraceSpan::TraceSpan(const std::string& name, const char* category)
{
    if (!traceEnabled())
        return;
    owned_name_ = name;
    category_ = category;
    start_us_ = traceNowUs();
    active_ = true;
}

TraceSpan::~TraceSpan()
{
    if (!active_ || !traceEnabled())
        return;
    Event event;
    event.name = name_ != nullptr ? std::string(name_) : owned_name_;
    event.category = category_;
    event.ts_us = start_us_;
    const std::uint64_t now = traceNowUs();
    event.dur_us = now > start_us_ ? now - start_us_ : 0;
    event.args = std::move(args_);
    record(std::move(event));
}

TraceSpan&
TraceSpan::arg(const char* key, const std::string& value)
{
    if (!active_)
        return *this;
    std::string encoded = "\"";
    appendJsonEscaped(encoded, value);
    encoded += "\"";
    appendArg(args_, key, encoded);
    return *this;
}

TraceSpan&
TraceSpan::arg(const char* key, std::uint64_t value)
{
    if (!active_)
        return *this;
    appendArg(args_, key, std::to_string(value));
    return *this;
}

} // namespace gpuecc::obs
