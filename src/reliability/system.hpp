/**
 * @file
 * System-level resilience and availability models (Section 7.3).
 *
 * HpcSystemModel reproduces Figure 9: the mean-time-to-interrupt
 * (MTTI, DUE rate) and mean-time-to-failure (MTTF, SDC rate) of an
 * exascale supercomputer built from A100-class GPUs, as a function of
 * machine scale. AvModel reproduces the autonomous-vehicle analysis:
 * per-vehicle SDC FIT against the ISO 26262 ASIL-D budget, and
 * expected fleet-level daily event counts for the US driving
 * population.
 */

#ifndef GPUECC_RELIABILITY_SYSTEM_HPP
#define GPUECC_RELIABILITY_SYSTEM_HPP

#include "faultsim/weighted.hpp"

namespace gpuecc {
namespace reliability {

/** Exascale machine built from compute GPUs (Figure 9). */
struct HpcSystemModel
{
    /** Peak FP64 tensor throughput per GPU (A100). */
    double tflops_per_gpu = 19.5;
    /** HBM2 per GPU in GB (A100 40GB). */
    double gb_per_gpu = 40.0;
    /** Raw soft-error rate. */
    double fit_per_gbit = 12.51;

    /** GPUs needed to reach a machine size in exaflops. */
    double gpusFor(double exaflops) const;

    /** Raw soft-error FIT of the whole machine's HBM2. */
    double machineRawFit(double exaflops) const;

    /** System MTTI in hours (DUE-driven interrupts). */
    double mttiHours(double exaflops,
                     const WeightedOutcome& outcome) const;

    /** System MTTF in hours (SDC-driven silent failures). */
    double mttfHours(double exaflops,
                     const WeightedOutcome& outcome) const;
};

/** GPU-accelerated autonomous-vehicle fleet (Section 7.3). */
struct AvModel
{
    /** HBM2 per vehicle in GB (one A100-class GPU). */
    double gb_per_vehicle = 40.0;
    double fit_per_gbit = 12.51;

    /** ISO 26262 ASIL-D budget for SDC. */
    double iso26262_sdc_fit_limit = 10.0;

    /** US fleet driving exposure: 225.8M drivers x 51 min/day. */
    double fleet_hours_per_day = 225.8e6 * 51.0 / 60.0;

    /** Raw soft-error FIT of one vehicle's GPU memory. */
    double vehicleRawFit() const;

    /** Per-vehicle SDC FIT under an ECC organization. */
    double vehicleSdcFit(const WeightedOutcome& outcome) const;

    /** Whether the organization satisfies the ASIL-D SDC budget. */
    bool satisfiesIso26262(const WeightedOutcome& outcome) const;

    /** Expected fleet-wide SDC events per day. */
    double fleetSdcPerDay(const WeightedOutcome& outcome) const;

    /** Expected vehicles interrupted by a DUE per day. */
    double fleetDuePerDay(const WeightedOutcome& outcome) const;
};

} // namespace reliability
} // namespace gpuecc

#endif // GPUECC_RELIABILITY_SYSTEM_HPP
