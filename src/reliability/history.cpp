#include "reliability/history.hpp"

namespace gpuecc {
namespace reliability {

const std::vector<HistoryPoint>&
historicalDramSer()
{
    // Transcription-level approximation of the Slayman (2011) beam
    // data shown in Figure 1: per-chip soft error rates falling
    // roughly an order of magnitude per ~6 years.
    static const std::vector<HistoryPoint> points = {
        {1998, 1200.0}, {2000, 700.0}, {2002, 420.0}, {2004, 230.0},
        {2006, 130.0},  {2008, 75.0},  {2010, 48.0},
    };
    return points;
}

const std::vector<HistoryPoint>&
historicalDramCapacity()
{
    // DRAM chip capacities in Mb across generations (mainstream
    // densities double roughly every three years in this period).
    static const std::vector<HistoryPoint> points = {
        {1998, 64.0},   {2001, 128.0},  {2004, 256.0},
        {2007, 512.0},  {2010, 1024.0}, {2013, 2048.0},
        {2016, 4096.0}, {2019, 8192.0},
    };
    return points;
}

std::pair<double, double>
nonBitcellBand()
{
    // Borucki et al.: the non-bitcell upset rate stays within a
    // two-order-of-magnitude range with no strong technology trend.
    return {5.0, 500.0};
}

namespace {

LineFit
regress(const std::vector<HistoryPoint>& points)
{
    std::vector<double> x;
    std::vector<double> y;
    for (const HistoryPoint& p : points) {
        x.push_back(p.year - 2000.0);
        y.push_back(p.value);
    }
    return exponentialRegression(x, y);
}

} // namespace

LineFit
regressSer()
{
    return regress(historicalDramSer());
}

LineFit
regressCapacity()
{
    return regress(historicalDramCapacity());
}

std::pair<double, double>
hbm2PointFit(double events_per_beam_second, double multi_bit_fraction,
             double acceleration, int stacks)
{
    // FIT = failures per 1e9 device-hours in the field.
    const double field_per_hour =
        events_per_beam_second * 3600.0 / acceleration;
    const double fit_per_stack = field_per_hour * 1e9 / stacks;
    return {fit_per_stack, fit_per_stack * multi_bit_fraction};
}

} // namespace reliability
} // namespace gpuecc
