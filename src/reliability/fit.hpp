/**
 * @file
 * FIT-rate arithmetic for system-level reliability projections.
 *
 * A FIT is one failure per 10^9 device-hours. The paper projects
 * system reliability from a raw HBM2 soft-error rate of 12.51 FIT/Gb
 * (inspired by the Titan supercomputer's GDDR5 field data) combined
 * with the per-event outcome probabilities each ECC organization
 * achieves (Figure 8).
 */

#ifndef GPUECC_RELIABILITY_FIT_HPP
#define GPUECC_RELIABILITY_FIT_HPP

#include "faultsim/weighted.hpp"

namespace gpuecc {
namespace reliability {

/** Hours per FIT unit: 10^9 device-hours. */
constexpr double fit_hours = 1e9;

/** Raw (pre-ECC) soft-error FIT of a memory of the given capacity. */
double rawMemoryFit(double fit_per_gbit, double gbit);

/** SDC FIT given raw event FIT and an ECC outcome profile. */
double sdcFit(double raw_fit, const WeightedOutcome& outcome);

/** DUE FIT given raw event FIT and an ECC outcome profile. */
double dueFit(double raw_fit, const WeightedOutcome& outcome);

/** Mean time between failures (hours) at a FIT rate. */
double mttfHours(double fit);

} // namespace reliability
} // namespace gpuecc

#endif // GPUECC_RELIABILITY_FIT_HPP
