#include "reliability/system.hpp"

#include "common/log.hpp"
#include "reliability/fit.hpp"

namespace gpuecc {
namespace reliability {

double
HpcSystemModel::gpusFor(double exaflops) const
{
    require(exaflops > 0.0, "HpcSystemModel: exaflops must be positive");
    return exaflops * 1e6 / tflops_per_gpu;
}

double
HpcSystemModel::machineRawFit(double exaflops) const
{
    return gpusFor(exaflops) *
           rawMemoryFit(fit_per_gbit, gb_per_gpu * 8.0);
}

double
HpcSystemModel::mttiHours(double exaflops,
                          const WeightedOutcome& outcome) const
{
    return reliability::mttfHours(
        dueFit(machineRawFit(exaflops), outcome));
}

double
HpcSystemModel::mttfHours(double exaflops,
                          const WeightedOutcome& outcome) const
{
    return reliability::mttfHours(
        sdcFit(machineRawFit(exaflops), outcome));
}

double
AvModel::vehicleRawFit() const
{
    return rawMemoryFit(fit_per_gbit, gb_per_vehicle * 8.0);
}

double
AvModel::vehicleSdcFit(const WeightedOutcome& outcome) const
{
    return sdcFit(vehicleRawFit(), outcome);
}

bool
AvModel::satisfiesIso26262(const WeightedOutcome& outcome) const
{
    return vehicleSdcFit(outcome) <= iso26262_sdc_fit_limit;
}

double
AvModel::fleetSdcPerDay(const WeightedOutcome& outcome) const
{
    return vehicleSdcFit(outcome) * fleet_hours_per_day / fit_hours;
}

double
AvModel::fleetDuePerDay(const WeightedOutcome& outcome) const
{
    return dueFit(vehicleRawFit(), outcome) * fleet_hours_per_day /
           fit_hours;
}

} // namespace reliability
} // namespace gpuecc
