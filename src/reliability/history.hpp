/**
 * @file
 * Historical DRAM soft-error trends (Figure 1).
 *
 * Figure 1 overlays (a) neutron-beam-measured per-chip DRAM soft
 * error rates across process generations (falling exponentially),
 * (b) DRAM chip capacities (rising exponentially), (c) the roughly
 * flat two-order-of-magnitude band of non-bitcell (logic) upset
 * rates, and (d) the paper's measured HBM2 point. The paper's
 * figure cites Slayman (RAMS 2011) and a capacity compilation; the
 * exact datapoint values are not printed, so this module embeds a
 * transcription-level approximation of the published trends and
 * reproduces the figure's exponential regressions.
 */

#ifndef GPUECC_RELIABILITY_HISTORY_HPP
#define GPUECC_RELIABILITY_HISTORY_HPP

#include <utility>
#include <vector>

#include "common/stats.hpp"

namespace gpuecc {
namespace reliability {

/** One historical observation. */
struct HistoryPoint
{
    double year;
    double value;
};

/** Per-chip neutron-beam DRAM soft error rates (FIT/chip). */
const std::vector<HistoryPoint>& historicalDramSer();

/** DRAM chip capacities (Mb). */
const std::vector<HistoryPoint>& historicalDramCapacity();

/** The flat non-bitcell upset-rate band (FIT/chip), low and high. */
std::pair<double, double> nonBitcellBand();

/** Exponential regression (value = A * exp(b * (year - 2000))). */
LineFit regressSer();

/** Exponential regression of capacity growth. */
LineFit regressCapacity();

/**
 * Our simulated HBM2 measurement mapped onto the figure: per-chip
 * (per-stack) FIT for all events and for multi-bit events only.
 *
 * @param events_per_beam_second observed event rate in the beam
 * @param multi_bit_fraction     fraction of events that are multi-bit
 * @param acceleration           beam acceleration factor
 * @param stacks                 HBM2 stacks sharing that rate
 */
std::pair<double, double>
hbm2PointFit(double events_per_beam_second, double multi_bit_fraction,
             double acceleration, int stacks);

} // namespace reliability
} // namespace gpuecc

#endif // GPUECC_RELIABILITY_HISTORY_HPP
