#include "reliability/fit.hpp"

#include <limits>

#include "common/log.hpp"

namespace gpuecc {
namespace reliability {

double
rawMemoryFit(double fit_per_gbit, double gbit)
{
    require(fit_per_gbit >= 0.0 && gbit >= 0.0,
            "rawMemoryFit: negative inputs");
    return fit_per_gbit * gbit;
}

double
sdcFit(double raw_fit, const WeightedOutcome& outcome)
{
    return raw_fit * outcome.sdc;
}

double
dueFit(double raw_fit, const WeightedOutcome& outcome)
{
    return raw_fit * outcome.detect;
}

double
mttfHours(double fit)
{
    if (fit <= 0.0)
        return std::numeric_limits<double>::infinity();
    return fit_hours / fit;
}

} // namespace reliability
} // namespace gpuecc
