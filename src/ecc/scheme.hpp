/**
 * @file
 * The entry-level ECC scheme interface.
 *
 * Every organization evaluated in the paper protects one 32B HBM2
 * memory entry with 4B of check bits, transmitted as a 288-bit
 * physical entry (4 beats x 72 pins). EntryScheme abstracts over the
 * binary and symbol-based organizations so the fault-injection
 * evaluator, benches, and examples treat them uniformly.
 */

#ifndef GPUECC_ECC_SCHEME_HPP
#define GPUECC_ECC_SCHEME_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/bits.hpp"

namespace gpuecc {

/** 32B of user data: four 64-bit words. */
using EntryData = std::array<std::uint64_t, 4>;

/** Outcome of decoding one physical memory entry. */
struct EntryDecode
{
    enum class Status
    {
        clean,      //!< no error observed
        corrected,  //!< one or more corrections applied (DCE)
        due         //!< detected-yet-uncorrectable; data is discarded
    };

    Status status;
    /** Decoded data; meaningful unless status is due. */
    EntryData data;
};

/** A full-entry ECC organization (encode 32B -> 36B and back). */
class EntryScheme
{
  public:
    virtual ~EntryScheme() = default;

    /** Short machine-friendly identifier, e.g. "duet". */
    virtual std::string id() const = 0;

    /** Human-readable name as used in the paper, e.g.
     *  "DuetECC (I:SEC-DED+CSC)". */
    virtual std::string name() const = 0;

    /** Encode 32B of data into the 288-bit physical entry. */
    virtual Bits288 encode(const EntryData& data) const = 0;

    /** Decode a (possibly corrupted) physical entry. */
    virtual EntryDecode decode(const Bits288& received) const = 0;

    /**
     * Decode `n` physical entries in one call.
     *
     * This is the batched shard kernel's decode stage: one virtual
     * dispatch amortized over a whole structure-of-arrays batch
     * instead of one per entry. Results must be element-wise
     * identical to n calls of decode() — the default loop guarantees
     * that for every scheme; organizations with a compiled fast path
     * override it to devirtualize the inner loop as well.
     */
    virtual void
    decodeBatch(const Bits288* received, EntryDecode* out,
                std::size_t n) const
    {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = decode(received[i]);
    }

    /** Whether the organization corrects single-pin (permanent)
     *  errors; SSC-DSD+ is the one scheme in the paper that does not. */
    virtual bool correctsPinErrors() const = 0;

    /**
     * Decode treating one pin as a *known* erasure - the degraded
     * operating mode after a permanent pin failure has been
     * diagnosed (Section 2.5's graceful-degradation story taken one
     * step further: the controller stops trusting the pin and the
     * code's redundancy is re-aimed at the remaining bits).
     *
     * The default ignores the diagnosis and decodes normally;
     * organizations with erasure support override it.
     */
    virtual EntryDecode
    decodeWithPinErasure(const Bits288& received, int pin) const
    {
        (void)pin;
        return decode(received);
    }
};

} // namespace gpuecc

#endif // GPUECC_ECC_SCHEME_HPP
