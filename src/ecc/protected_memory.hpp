/**
 * @file
 * An ECC-protected memory region.
 *
 * ProtectedMemory is the controller-level view that ties the library
 * together: writes encode 32B payloads into 36B physical entries,
 * reads decode (optionally scrubbing corrected entries back), faults
 * are injected in the physical domain, and an accounting block
 * tallies detected-and-corrected, detected-uncorrectable, and -
 * because the simulator keeps golden copies - true silent data
 * corruptions, which a real system could never count (Section 2.3 of
 * the paper notes field studies cannot observe SDC).
 */

#ifndef GPUECC_ECC_PROTECTED_MEMORY_HPP
#define GPUECC_ECC_PROTECTED_MEMORY_HPP

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "ecc/placement.hpp"
#include "ecc/scheme.hpp"

namespace gpuecc {

/** A sparse, ECC-protected array of 32B entries. */
class ProtectedMemory
{
  public:
    /** Outcome of one read. */
    struct ReadResult
    {
        EntryDecode::Status status;
        /** Decoded payload (stale-golden on DUE so callers can keep
         *  simulating; a real system would fault). */
        EntryData data;
        /** True when the returned data silently differs from what
         *  was written (simulator-only knowledge). */
        bool silent_corruption;
    };

    /** Running tallies. */
    struct Stats
    {
        std::uint64_t writes = 0;
        std::uint64_t reads = 0;
        std::uint64_t corrected = 0;
        std::uint64_t dues = 0;
        std::uint64_t sdcs = 0;
        std::uint64_t scrub_fixes = 0;
    };

    /**
     * @param scheme        the ECC organization protecting the region
     * @param num_entries   region size in 32B entries
     * @param scrub_on_read write corrected entries back on read
     *                      (standard DRAM scrubbing behaviour)
     */
    ProtectedMemory(std::shared_ptr<const EntryScheme> scheme,
                    std::uint64_t num_entries,
                    bool scrub_on_read = true);

    const EntryScheme& scheme() const { return *scheme_; }
    std::uint64_t numEntries() const { return num_entries_; }

    /** Encode and store a payload. */
    void write(std::uint64_t index, const EntryData& data);

    /** Decode (and possibly scrub) an entry; unwritten entries read
     *  as zero. */
    ReadResult read(std::uint64_t index);

    /** Flip physical bits of a stored entry (soft-error injection). */
    void injectPhysical(std::uint64_t index, const Bits288& mask);

    /** Flip the physical cells of a structural (mat/wordline/logic)
     *  error observed in the ECC-disabled beam characterization: the
     *  mask's bit indices carry over to the physical domain (mat m
     *  holds physical byte m). This is the right translation for
     *  replaying beam events against an ECC-protected region. */
    void injectStructural(std::uint64_t index,
                          const Bits<256>& data_mask);

    /** Flip the cells holding specific *logical* data bits (targeted
     *  corruption through the scheme's systematic placement). */
    void injectData(std::uint64_t index, const Bits<256>& data_mask);

    /**
     * Patrol scrub: read-correct-rewrite every written entry.
     *
     * @return number of entries whose stored bits were repaired
     */
    std::uint64_t scrub();

    const Stats& stats() const { return stats_; }

  private:
    struct Slot
    {
        Bits288 stored;
        EntryData golden;
    };

    std::shared_ptr<const EntryScheme> scheme_;
    std::uint64_t num_entries_;
    bool scrub_on_read_;
    std::array<int, 256> placement_;
    std::unordered_map<std::uint64_t, Slot> slots_;
    Stats stats_;
};

} // namespace gpuecc

#endif // GPUECC_ECC_PROTECTED_MEMORY_HPP
