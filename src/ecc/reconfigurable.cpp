#include "ecc/reconfigurable.hpp"

#include "codes/sec2bec.hpp"

namespace gpuecc {

ReconfigurableDuetTrio::ReconfigurableDuetTrio(Policy initial)
    : code_(std::make_shared<const Code72>(sec2becInterleavedMatrix(),
                                           Code72::stride4Pairs())),
      policy_(initial)
{
    // Both policies share the code and therefore the encoder; only
    // the decode mode differs. (The paper's DuetECC uses a Hsiao
    // inner code, but any SEC-DED code works for the Duet policy and
    // sharing the SEC-2bEC matrix is what makes one codec serve
    // both.)
    duet_ = std::make_unique<const BinaryEntryScheme>(
        code_, BinarySchemeConfig{"duet-policy", "Duet policy", true,
                                  Code72::Mode::secDed, true});
    trio_ = std::make_unique<const BinaryEntryScheme>(
        code_, BinarySchemeConfig{"trio-policy", "Trio policy", true,
                                  Code72::Mode::sec2bEc, true});
}

std::string
ReconfigurableDuetTrio::name() const
{
    return policy_ == Policy::duet
        ? "Reconfigurable (Duet policy)"
        : "Reconfigurable (Trio policy)";
}

Bits288
ReconfigurableDuetTrio::encode(const EntryData& data) const
{
    return trio_->encode(data); // identical for both policies
}

EntryDecode
ReconfigurableDuetTrio::decode(const Bits288& received) const
{
    return policy_ == Policy::duet ? duet_->decode(received)
                                   : trio_->decode(received);
}

} // namespace gpuecc
