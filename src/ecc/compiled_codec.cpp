#include "ecc/compiled_codec.hpp"

#include "common/log.hpp"
#include "ecc/csc.hpp"

namespace gpuecc {

CompiledBinaryCodec::CompiledBinaryCodec(
    std::shared_ptr<const Code72> code, const EntryLayout& layout,
    Code72::Mode mode, bool csc)
    : code_(std::move(code)), csc_(csc), gather_{}, fix_{}, enc_{}
{
    require(code_ != nullptr, "CompiledBinaryCodec needs a code");

    // Gather tables: per-physical-bit syndrome and data-extraction
    // contributions, XOR-folded over each byte's 256 values with the
    // strip-lowest-bit dynamic program.
    for (int b = 0; b < layout::num_bytes; ++b) {
        std::array<Gather, 8> col{};
        for (int t = 0; t < 8; ++t) {
            const auto [cw, bit] = layout.logicalFor(8 * b + t);
            col[t].syn = static_cast<std::uint32_t>(
                             code_->columnSyndrome(bit))
                         << (8 * cw);
            if (bit < Code72::k)
                col[t].data[cw] = bit64(bit);
        }
        auto& row = gather_[b];
        row[0] = Gather{};
        for (int v = 1; v < 256; ++v) {
            const int low =
                std::countr_zero(static_cast<unsigned>(v));
            row[v] = row[v & (v - 1)];
            row[v].syn ^= col[low].syn;
            for (int w = 0; w < 4; ++w)
                row[v].data[w] ^= col[low].data[w];
        }
    }

    // Fix tables: the image of Code72's syndrome->outcome table under
    // the layout permutation, one per codeword slot.
    for (int cw = 0; cw < layout::num_codewords; ++cw) {
        for (int s = 0; s < 256; ++s) {
            const CodewordDecode& d = code_->outcomeForSyndrome(
                static_cast<std::uint8_t>(s), mode);
            Fix f{};
            f.due = d.status == CodewordDecode::Status::due;
            f.data_fix = d.correction.word(0);
            f.phys = {-1, -1};
            int i = 0;
            d.correction.forEachSetBit([&](int bit) {
                f.phys[i++] = static_cast<std::int16_t>(
                    layout.physicalFor(cw, bit));
            });
            fix_[cw][s] = f;
        }
    }

    // Encode scatter tables: the physical image (data placement plus
    // check contributions) of each data bit, folded per data byte.
    // code_->encode is linear, so encode(bit) is exactly bit's column.
    for (int b = 0; b < 32; ++b) {
        const int cw = b / 8;
        std::array<Bits288, 8> col{};
        for (int t = 0; t < 8; ++t) {
            const Bits72 cw_col =
                code_->encodeCompiled(bit64(8 * (b % 8) + t));
            cw_col.forEachSetBit([&](int bit) {
                col[t].set(layout.physicalFor(cw, bit), 1);
            });
        }
        auto& row = enc_[b];
        for (int v = 1; v < 256; ++v) {
            const int low =
                std::countr_zero(static_cast<unsigned>(v));
            row[v] = row[v & (v - 1)] ^ col[low];
        }
    }
}

Bits288
CompiledBinaryCodec::encode(const EntryData& data) const
{
    Bits288 physical;
    for (int w = 0; w < 4; ++w) {
        for (int j = 0; j < 8; ++j)
            physical ^= enc_[8 * w + j][(data[w] >> (8 * j)) & 0xff];
    }
    return physical;
}

EntryDecode
CompiledBinaryCodec::decode(const Bits288& received) const
{
    std::uint32_t syn = 0;
    EntryData data{};
    for (int b = 0; b < layout::num_bytes; ++b) {
        const std::uint64_t byte =
            (received.word(b >> 3) >> ((b & 7) * 8)) & 0xff;
        const Gather& g = gather_[b][byte];
        syn ^= g.syn;
        data[0] ^= g.data[0];
        data[1] ^= g.data[1];
        data[2] ^= g.data[2];
        data[3] ^= g.data[3];
    }
    if (syn == 0)
        return {EntryDecode::Status::clean, data};

    const Fix* fixes[4] = {};
    int num_correcting = 0;
    for (int cw = 0; cw < 4; ++cw) {
        const std::uint8_t s =
            static_cast<std::uint8_t>(syn >> (8 * cw));
        if (s == 0)
            continue;
        const Fix& f = fix_[cw][s];
        if (f.due)
            return {EntryDecode::Status::due, EntryData{}};
        fixes[cw] = &f;
        ++num_correcting;
    }

    if (csc_ && num_correcting >= 2) {
        // Same predicate, same corrected-bit set as the reference.
        Bits288 corrected_physical;
        for (int cw = 0; cw < 4; ++cw) {
            if (!fixes[cw])
                continue;
            for (int p : fixes[cw]->phys) {
                if (p >= 0)
                    corrected_physical.set(p, 1);
            }
        }
        if (!correctionSanityCheckPasses(corrected_physical))
            return {EntryDecode::Status::due, EntryData{}};
    }

    for (int cw = 0; cw < 4; ++cw) {
        if (fixes[cw])
            data[cw] ^= fixes[cw]->data_fix;
    }
    return {EntryDecode::Status::corrected, data};
}

void
CompiledBinaryCodec::decodeBatch(const Bits288* received,
                                 EntryDecode* out,
                                 std::size_t n) const
{
    // Per-element decode() with the table bases hoisted by the
    // compiler across the batch; correctness is element-wise
    // delegation, so the differential harness covers this path too.
    for (std::size_t i = 0; i < n; ++i)
        out[i] = decode(received[i]);
}

} // namespace gpuecc
