/**
 * @file
 * Binary entry-level ECC organizations.
 *
 * All six binary rows of the paper's Table 2 are instances of one
 * composition: four (72, 64) codewords per entry, an optional Eq. 1/2
 * interleave, a decode mode (SEC-DED or SEC-2bEC), and an optional
 * correction sanity check. DuetECC is interleaved SEC-DED with CSC;
 * TrioECC is interleaved SEC-2bEC with CSC.
 */

#ifndef GPUECC_ECC_BINARY_SCHEME_HPP
#define GPUECC_ECC_BINARY_SCHEME_HPP

#include <memory>
#include <string>

#include "codes/linear_code.hpp"
#include "ecc/compiled_codec.hpp"
#include "ecc/scheme.hpp"
#include "interleave/swizzle.hpp"

namespace gpuecc {

/** Configuration of a binary entry scheme. */
struct BinarySchemeConfig
{
    std::string id;
    std::string name;
    bool interleaved;
    Code72::Mode mode;
    bool csc;
};

/** A binary (72, 64)-codeword-based entry organization. */
class BinaryEntryScheme : public EntryScheme
{
  public:
    /**
     * @param code   the inner codeword code (shared between entries);
     *               its aligned-pair set must match the layout
     *               (adjacent pairs non-interleaved, stride-4 pairs
     *               interleaved) when mode is sec2bEc
     * @param config scheme identity and decode policy
     */
    BinaryEntryScheme(std::shared_ptr<const Code72> code,
                      BinarySchemeConfig config);

    std::string id() const override { return config_.id; }
    std::string name() const override { return config_.name; }

    /** Encode (backend dispatch: compiled scatter tables vs the
     *  per-codeword reference path). */
    Bits288
    encode(const EntryData& data) const override
    {
        return useReferenceCodec() ? encodeReference(data)
                                   : codec_.encode(data);
    }

    /** Decode (backend dispatch: compiled gather/fix tables vs the
     *  disassemble-and-matrix reference path). */
    EntryDecode
    decode(const Bits288& received) const override
    {
        return useReferenceCodec() ? decodeReference(received)
                                   : codec_.decode(received);
    }

    /**
     * Batch decode: one backend dispatch for the whole batch, then
     * the compiled codec's devirtualized loop (or the reference path
     * element-wise under GPUECC_REFERENCE_CODEC).
     */
    void
    decodeBatch(const Bits288* received, EntryDecode* out,
                std::size_t n) const override
    {
        if (useReferenceCodec()) {
            for (std::size_t i = 0; i < n; ++i)
                out[i] = decodeReference(received[i]);
            return;
        }
        codec_.decodeBatch(received, out, n);
    }

    /** The original per-codeword encode (the differential oracle). */
    Bits288 encodeReference(const EntryData& data) const;

    /** The original matrix-path decode (the differential oracle). */
    EntryDecode decodeReference(const Bits288& received) const;

    bool correctsPinErrors() const override { return true; }

    /**
     * Erasure-mode decode for a diagnosed pin: each codeword sees
     * exactly one erased bit, and the d = 4 inner code corrects the
     * erasure plus one additional error per codeword - so a degraded
     * GPU regains full single-bit soft error correction.
     */
    EntryDecode decodeWithPinErasure(const Bits288& received,
                                     int pin) const override;

    /** The inner codeword code. */
    const Code72& code() const { return *code_; }

    /** The bit layout in use. */
    const EntryLayout& entryLayout() const { return layout_; }

    /** The compiled fast-path codec (tables built at construction). */
    const CompiledBinaryCodec& compiledCodec() const { return codec_; }

  private:
    std::shared_ptr<const Code72> code_;
    BinarySchemeConfig config_;
    EntryLayout layout_;
    CompiledBinaryCodec codec_;
};

} // namespace gpuecc

#endif // GPUECC_ECC_BINARY_SCHEME_HPP
