#include "ecc/csc.hpp"

#include "interleave/swizzle.hpp"

namespace gpuecc {

bool
correctionSanityCheckPasses(const Bits288& corrected_physical)
{
    bool same_byte = true;
    bool same_pin = true;
    int first = -1;
    corrected_physical.forEachSetBit([&](int phys) {
        if (first < 0) {
            first = phys;
            return;
        }
        if (layout::byteOf(phys) != layout::byteOf(first))
            same_byte = false;
        if (layout::pinOf(phys) != layout::pinOf(first))
            same_pin = false;
    });
    return same_byte || same_pin;
}

} // namespace gpuecc
