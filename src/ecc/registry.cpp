#include "ecc/registry.hpp"

#include "codes/hsiao.hpp"
#include "codes/linear_code.hpp"
#include "codes/sec2bec.hpp"
#include "common/log.hpp"
#include "ecc/binary_scheme.hpp"
#include "ecc/rs_scheme.hpp"

namespace gpuecc {

namespace {

/** Shared inner codes (construction is non-trivial; build once). */
struct InnerCodes
{
    std::shared_ptr<const Code72> hsiao_adjacent;
    std::shared_ptr<const Code72> hsiao_stride4;
    std::shared_ptr<const Code72> sec2bec_adjacent;
    std::shared_ptr<const Code72> sec2bec_stride4;

    InnerCodes()
    {
        const Gf2Matrix hsiao = hsiao7264Matrix();
        hsiao_adjacent = std::make_shared<const Code72>(
            hsiao, Code72::adjacentPairs());
        hsiao_stride4 = std::make_shared<const Code72>(
            hsiao, Code72::stride4Pairs());
        sec2bec_adjacent = std::make_shared<const Code72>(
            sec2becPaperMatrix(), Code72::adjacentPairs());
        sec2bec_stride4 = std::make_shared<const Code72>(
            sec2becInterleavedMatrix(), Code72::stride4Pairs());
    }
};

const InnerCodes&
innerCodes()
{
    static const InnerCodes codes;
    return codes;
}

std::shared_ptr<EntryScheme>
makeBinary(const std::string& id, const std::string& name,
           bool interleaved, Code72::Mode mode, bool csc)
{
    const InnerCodes& codes = innerCodes();
    std::shared_ptr<const Code72> code;
    if (mode == Code72::Mode::secDed) {
        code = interleaved ? codes.hsiao_stride4 : codes.hsiao_adjacent;
    } else {
        code = interleaved ? codes.sec2bec_stride4
                           : codes.sec2bec_adjacent;
    }
    return std::make_shared<BinaryEntryScheme>(
        code, BinarySchemeConfig{id, name, interleaved, mode, csc});
}

} // namespace

std::shared_ptr<EntryScheme>
makeScheme(const std::string& id)
{
    Result<std::shared_ptr<EntryScheme>> scheme = findScheme(id);
    if (!scheme.ok())
        fatal(scheme.status().message());
    return scheme.value();
}

Result<std::shared_ptr<EntryScheme>>
findScheme(const std::string& id)
{
    if (id == "ni-secded") {
        return makeBinary(id, "NI:SEC-DED (baseline)", false,
                          Code72::Mode::secDed, false);
    }
    if (id == "i-secded") {
        return makeBinary(id, "I:SEC-DED", true, Code72::Mode::secDed,
                          false);
    }
    if (id == "duet") {
        return makeBinary(id, "DuetECC (I:SEC-DED+CSC)", true,
                          Code72::Mode::secDed, true);
    }
    if (id == "ni-sec2bec") {
        return makeBinary(id, "NI:SEC-2bEC", false,
                          Code72::Mode::sec2bEc, false);
    }
    if (id == "i-sec2bec") {
        return makeBinary(id, "I:SEC-2bEC", true, Code72::Mode::sec2bEc,
                          false);
    }
    if (id == "trio") {
        return makeBinary(id, "TrioECC (I:SEC-2bEC+CSC)", true,
                          Code72::Mode::sec2bEc, true);
    }
    if (id == "i-ssc")
        return std::make_shared<InterleavedSscScheme>(false);
    if (id == "i-ssc-csc")
        return std::make_shared<InterleavedSscScheme>(true);
    if (id == "ssc-dsd+") {
        return std::make_shared<Rs3632Scheme>(
            Rs3632Scheme::Decoder::sscDsdPlus);
    }
    if (id == "dsc")
        return std::make_shared<Rs3632Scheme>(Rs3632Scheme::Decoder::dsc);
    if (id == "ssc-tsd") {
        return std::make_shared<Rs3632Scheme>(
            Rs3632Scheme::Decoder::sscTsd);
    }
    std::string known;
    for (const std::string& k : schemeIds())
        known += (known.empty() ? "" : ", ") + k;
    return Status::notFound("unknown ECC scheme id: " + id +
                            " (known: " + known + ")");
}

std::vector<std::string>
schemeIds()
{
    return {"ni-secded", "i-secded", "duet", "ni-sec2bec", "i-sec2bec",
            "trio", "i-ssc", "i-ssc-csc", "ssc-dsd+", "dsc", "ssc-tsd"};
}

std::vector<std::shared_ptr<EntryScheme>>
paperSchemes()
{
    std::vector<std::shared_ptr<EntryScheme>> out;
    for (const char* id :
         {"ni-secded", "i-secded", "duet", "ni-sec2bec", "i-sec2bec",
          "trio", "i-ssc", "i-ssc-csc", "ssc-dsd+"}) {
        out.push_back(makeScheme(id));
    }
    return out;
}

std::vector<std::shared_ptr<EntryScheme>>
referenceSchemes()
{
    std::vector<std::shared_ptr<EntryScheme>> out;
    for (const char* id : {"dsc", "ssc-tsd"})
        out.push_back(makeScheme(id));
    return out;
}

} // namespace gpuecc
