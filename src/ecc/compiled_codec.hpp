/**
 * @file
 * Compiled entry-level codec for the binary (72, 64)x4 organizations.
 *
 * At scheme construction the codec lowers the whole decode pipeline
 * of a binary entry scheme — layout disassembly, four codeword
 * syndromes, data extraction — into one 36 x 256-entry gather table
 * over the physical 288-bit entry, and the per-codeword
 * syndrome->correction logic into 4 x 256-entry fix tables, so
 * decode becomes 36 table lookups, a packed-syndrome test, and (on
 * the rare correcting path) a handful of precomputed fixes. Encode
 * is likewise lowered into a 32 x 256-entry scatter table from data
 * bytes to physical entries.
 *
 * Outcomes are provably identical to the reference path: every table
 * entry is the XOR-fold of exact per-bit contributions of the same
 * linear maps the reference evaluates bit-by-bit, the fix tables are
 * images of Code72's syndrome->outcome table under the layout
 * permutation, and the correction sanity check is evaluated with the
 * very same correctionSanityCheckPasses() predicate on the same
 * corrected-bit set. tests/test_differential_codec.cpp enforces this
 * bit-for-bit against the reference decoder.
 */

#ifndef GPUECC_ECC_COMPILED_CODEC_HPP
#define GPUECC_ECC_COMPILED_CODEC_HPP

#include <array>
#include <cstdint>
#include <memory>

#include "codes/linear_code.hpp"
#include "ecc/scheme.hpp"
#include "interleave/swizzle.hpp"

namespace gpuecc {

/** Table-compiled encode/decode for one binary entry organization. */
class CompiledBinaryCodec
{
  public:
    /**
     * Compile the tables for one (code, layout, mode, csc) pipeline.
     *
     * @param code   the inner (72, 64) code (kept alive by the owner)
     * @param layout the physical bit arrangement
     * @param mode   decode mode baked into the fix tables
     * @param csc    apply the correction sanity check when >= 2
     *               codewords correct
     */
    CompiledBinaryCodec(std::shared_ptr<const Code72> code,
                        const EntryLayout& layout, Code72::Mode mode,
                        bool csc);

    /** Encode 32B of data: 32 scatter-table lookups. */
    Bits288 encode(const EntryData& data) const;

    /** Decode a physical entry: 36 gather-table lookups + fixes. */
    EntryDecode decode(const Bits288& received) const;

    /**
     * Decode `n` entries with the same tables; out[i] is identical to
     * decode(received[i]). Called (devirtualized) from the batched
     * shard kernel so the table base pointers stay live in registers
     * across the whole batch.
     */
    void decodeBatch(const Bits288* received, EntryDecode* out,
                     std::size_t n) const;

    /** Total compiled-table footprint in bytes (for memory audits). */
    static constexpr std::size_t
    memoryBytes()
    {
        return sizeof(gather_) + sizeof(fix_) + sizeof(enc_);
    }

  private:
    /** Per-physical-byte decode contribution. */
    struct Gather
    {
        /** Packed syndromes: byte c holds codeword c's syndrome. */
        std::uint32_t syn;
        /** Contribution to the four extracted data words. */
        std::array<std::uint64_t, 4> data;
    };

    /** Per-(codeword, syndrome) correction. */
    struct Fix
    {
        /** Detected-yet-uncorrectable syndrome. */
        bool due;
        /** XOR fix on the codeword's data word (bits < 64 only). */
        std::uint64_t data_fix;
        /** Corrected physical positions (CSC input); -1 = unused. */
        std::array<std::int16_t, 2> phys;
    };

    std::shared_ptr<const Code72> code_; //!< keeps the tables' source alive
    bool csc_;
    std::array<std::array<Gather, 256>, layout::num_bytes> gather_;
    std::array<std::array<Fix, 256>, layout::num_codewords> fix_;
    /** Data byte -> physical-entry contribution (data + check bits). */
    std::array<std::array<Bits288, 256>, 32> enc_;
};

} // namespace gpuecc

#endif // GPUECC_ECC_COMPILED_CODEC_HPP
