/**
 * @file
 * Data-bit placement probing.
 *
 * Every organization in the library is systematic: each of the 256
 * data bits appears verbatim at exactly one physical position of the
 * encoded entry (the remaining positions are check logic). This
 * helper recovers that placement by probing the encoder with unit
 * vectors, so data-domain error masks (e.g. from the beam-campaign
 * event generator, which observes only data bits) can be translated
 * into physical masks for any scheme.
 */

#ifndef GPUECC_ECC_PLACEMENT_HPP
#define GPUECC_ECC_PLACEMENT_HPP

#include <array>

#include "common/bits.hpp"
#include "ecc/scheme.hpp"

namespace gpuecc {

/**
 * Physical position of each data bit (index = 64*word + bit).
 *
 * Fatal if the scheme is not systematic (some data bit has no unique
 * pass-through position).
 */
std::array<int, 256> dataBitPlacement(const EntryScheme& scheme);

/** Translate a 256-bit data-domain flip mask to physical positions. */
Bits288 dataMaskToPhysical(const std::array<int, 256>& placement,
                           const Bits<256>& data_mask);

/**
 * Embed a beam-observed (ECC-disabled) error mask as a mat-aligned
 * physical mask.
 *
 * Beam characterization reads raw 32B entries, so a mat-local
 * failure appears as one contiguous data byte. With ECC enabled the
 * same mat holds one *physical* byte of the encoded entry (which the
 * interleave spreads over all four codewords), so structural errors
 * replay at the same bit indices in the physical domain - this is an
 * identity embedding, distinct from dataMaskToPhysical(), which
 * instead targets the cells holding specific logical bits.
 */
Bits288 dataMaskAsMatAligned(const Bits<256>& data_mask);

} // namespace gpuecc

#endif // GPUECC_ECC_PLACEMENT_HPP
