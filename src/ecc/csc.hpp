/**
 * @file
 * The correction sanity check (CSC).
 *
 * When multiple codewords of an entry perform correction, the CSC
 * allows the correction to proceed only if every corrected physical
 * bit falls within a single aligned byte or a single pin - the two
 * error shapes the interleave is designed to scatter. Anything else
 * is almost certainly a broad error being miscorrected, so the entry
 * is discarded as a DUE instead (Section 6.1 of the paper).
 */

#ifndef GPUECC_ECC_CSC_HPP
#define GPUECC_ECC_CSC_HPP

#include "common/bits.hpp"

namespace gpuecc {

/**
 * Whether a set of corrected physical bit positions passes the CSC.
 *
 * @param corrected_physical mask of every bit any codeword corrected,
 *        in physical (transmitted) entry positions
 * @return true when all corrected bits share one aligned byte or one
 *         pin (vacuously true for an empty mask)
 */
bool correctionSanityCheckPasses(const Bits288& corrected_physical);

} // namespace gpuecc

#endif // GPUECC_ECC_CSC_HPP
