/**
 * @file
 * Factory for every ECC organization evaluated in the paper.
 *
 * paperSchemes() returns the nine rows of Table 2 in paper order;
 * referenceSchemes() adds the (36, 32) DSC and SSC-TSD organizations
 * that Section 6.2 discusses but rejects on decoder-latency grounds.
 */

#ifndef GPUECC_ECC_REGISTRY_HPP
#define GPUECC_ECC_REGISTRY_HPP

#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "ecc/scheme.hpp"

namespace gpuecc {

/** The nine organizations of the paper's Table 2, in order. */
std::vector<std::shared_ptr<EntryScheme>> paperSchemes();

/** The (36, 32) reference organizations (DSC, SSC-TSD). */
std::vector<std::shared_ptr<EntryScheme>> referenceSchemes();

/**
 * Construct one scheme by id.
 *
 * Known ids: ni-secded, i-secded, duet, ni-sec2bec, i-sec2bec, trio,
 * i-ssc, i-ssc-csc, ssc-dsd+, dsc, ssc-tsd. Fatal on unknown ids.
 */
std::shared_ptr<EntryScheme> makeScheme(const std::string& id);

/**
 * Construct one scheme by id, reporting an unknown id as a notFound
 * error instead of exiting — the campaign runner uses this to skip a
 * bad scheme and record it in the report rather than losing the run.
 */
Result<std::shared_ptr<EntryScheme>>
findScheme(const std::string& id);

/** All known scheme ids (paper order, then references). */
std::vector<std::string> schemeIds();

} // namespace gpuecc

#endif // GPUECC_ECC_REGISTRY_HPP
