#include "ecc/rs_scheme.hpp"

#include "common/codec_mode.hpp"
#include "common/log.hpp"
#include "ecc/csc.hpp"
#include "interleave/swizzle.hpp"

namespace gpuecc {

namespace {

/**
 * Word-extracted aligned physical byte B (bits [8B, 8B+8)); byte
 * fields never straddle the 64-bit words of a Bits288.
 */
std::uint8_t
physByte(const Bits288& entry, int b)
{
    return static_cast<std::uint8_t>(entry.word(b >> 3)
                                     >> ((b & 7) * 8));
}

/**
 * Word-extracted 4-bit field at bit offset `off` (off % 4 == 0, so
 * the field never straddles a word boundary).
 */
std::uint8_t
physNibble(const Bits288& entry, int off)
{
    return static_cast<std::uint8_t>(
        (entry.word(off >> 6) >> (off & 63)) & 0xf);
}

/** Accumulator for word-level scatter into a physical entry. */
struct EntryWords
{
    std::array<std::uint64_t, Bits288::numWords> w{};

    void
    orField(int off, std::uint64_t value)
    {
        w[off >> 6] |= value << (off & 63);
    }

    Bits288
    toBits() const
    {
        Bits288 out;
        for (int i = 0; i < Bits288::numWords; ++i)
            out.setWord(i, w[i]);
        return out;
    }
};

/** Entry data words -> 32 bytes (little-endian within each word). */
std::array<std::uint8_t, 32>
dataToBytes(const EntryData& data)
{
    std::array<std::uint8_t, 32> bytes{};
    for (int w = 0; w < 4; ++w) {
        for (int j = 0; j < 8; ++j) {
            bytes[8 * w + j] =
                static_cast<std::uint8_t>(data[w] >> (8 * j));
        }
    }
    return bytes;
}

/** 32 bytes -> entry data words. */
EntryData
bytesToData(const std::array<std::uint8_t, 32>& bytes)
{
    EntryData data{};
    for (int w = 0; w < 4; ++w) {
        for (int j = 0; j < 8; ++j) {
            data[w] |= static_cast<std::uint64_t>(bytes[8 * w + j])
                       << (8 * j);
        }
    }
    return data;
}

} // namespace

// ---------------------------------------------------------------------
// InterleavedSscScheme
// ---------------------------------------------------------------------

InterleavedSscScheme::InterleavedSscScheme(bool csc)
    : code_(18, 16), csc_(csc)
{
}

int
InterleavedSscScheme::physicalBit(int cw, int pos, int t)
{
    // Code position -> (beat-pair h, column c); see the header.
    const int h = pos / 9;
    const int j = pos % 9;
    const int c = 2 * j + ((cw + h) % 2);
    const int beat = 2 * h + t / 4;
    const int pin = 4 * c + t % 4;
    return layout::physicalIndex(beat, pin);
}

std::array<std::vector<std::uint8_t>, 2>
InterleavedSscScheme::gatherCodewords(const Bits288& physical) const
{
    std::array<std::vector<std::uint8_t>, 2> cws;
    const bool reference = useReferenceCodec();
    for (int cw = 0; cw < 2; ++cw) {
        cws[cw].assign(18, 0);
        for (int pos = 0; pos < 18; ++pos) {
            std::uint8_t sym = 0;
            if (reference) {
                for (int t = 0; t < 8; ++t) {
                    sym |= static_cast<std::uint8_t>(
                               physical.get(physicalBit(cw, pos, t)))
                           << t;
                }
            } else {
                // A symbol is one 4-bit column slice of each beat of
                // its beat-pair; both nibbles are word-extractable.
                const int lo = physicalBit(cw, pos, 0);
                const int hi = physicalBit(cw, pos, 4);
                sym = static_cast<std::uint8_t>(
                    physNibble(physical, lo)
                    | (physNibble(physical, hi) << 4));
            }
            cws[cw][pos] = sym;
        }
    }
    return cws;
}

Bits288
InterleavedSscScheme::encode(const EntryData& data) const
{
    const auto bytes = dataToBytes(data);
    const bool reference = useReferenceCodec();
    Bits288 physical;
    EntryWords fast;
    for (int cw = 0; cw < 2; ++cw) {
        std::vector<std::uint8_t> payload(bytes.begin() + 16 * cw,
                                          bytes.begin() + 16 * (cw + 1));
        const std::vector<std::uint8_t> encoded = code_.encode(payload);
        for (int pos = 0; pos < 18; ++pos) {
            if (reference) {
                for (int t = 0; t < 8; ++t) {
                    if ((encoded[pos] >> t) & 1)
                        physical.set(physicalBit(cw, pos, t), 1);
                }
            } else {
                fast.orField(physicalBit(cw, pos, 0),
                             encoded[pos] & 0xfull);
                fast.orField(physicalBit(cw, pos, 4),
                             (encoded[pos] >> 4) & 0xfull);
            }
        }
    }
    return reference ? physical : fast.toBits();
}

EntryDecode
InterleavedSscScheme::decode(const Bits288& received) const
{
    const auto cws = gatherCodewords(received);
    std::array<RsDecode, 2> results;
    int num_correcting = 0;
    for (int cw = 0; cw < 2; ++cw) {
        results[cw] = decodeSscOneShot(code_, cws[cw]);
        if (results[cw].status == RsDecode::Status::due)
            return {EntryDecode::Status::due, EntryData{}};
        if (results[cw].status == RsDecode::Status::corrected)
            ++num_correcting;
    }

    if (csc_ && num_correcting >= 2) {
        Bits288 corrected_physical;
        for (int cw = 0; cw < 2; ++cw) {
            for (int pos : results[cw].error_positions) {
                const std::uint8_t magnitude = static_cast<std::uint8_t>(
                    results[cw].word[pos] ^ cws[cw][pos]);
                for (int t = 0; t < 8; ++t) {
                    if ((magnitude >> t) & 1)
                        corrected_physical.set(physicalBit(cw, pos, t), 1);
                }
            }
        }
        if (!correctionSanityCheckPasses(corrected_physical))
            return {EntryDecode::Status::due, EntryData{}};
    }

    std::array<std::uint8_t, 32> bytes{};
    for (int cw = 0; cw < 2; ++cw) {
        for (int pos = 2; pos < 18; ++pos)
            bytes[16 * cw + (pos - 2)] = results[cw].word[pos];
    }
    return {num_correcting ? EntryDecode::Status::corrected
                           : EntryDecode::Status::clean,
            bytesToData(bytes)};
}

EntryDecode
InterleavedSscScheme::decodeWithPinErasure(const Bits288& received,
                                           int pin) const
{
    require(pin >= 0 && pin < layout::num_pins,
            "decodeWithPinErasure: bad pin");
    const auto cws = gatherCodewords(received);
    const int column = pin / 4;

    std::array<RsDecode, 2> results;
    for (int h = 0; h < 2; ++h) {
        const int cw = (column + h) % 2;
        const int pos = 9 * h + column / 2;
        results[cw] = decodeWithErasures(code_, cws[cw], {pos});
        if (results[cw].status == RsDecode::Status::due)
            return {EntryDecode::Status::due, EntryData{}};
    }

    std::array<std::uint8_t, 32> bytes{};
    bool any = false;
    for (int cw = 0; cw < 2; ++cw) {
        any = any || results[cw].status == RsDecode::Status::corrected;
        for (int pos = 2; pos < 18; ++pos)
            bytes[16 * cw + (pos - 2)] = results[cw].word[pos];
    }
    return {any ? EntryDecode::Status::corrected
                : EntryDecode::Status::clean,
            bytesToData(bytes)};
}

// ---------------------------------------------------------------------
// Rs3632Scheme
// ---------------------------------------------------------------------

Rs3632Scheme::Rs3632Scheme(Decoder decoder)
    : code_(36, 32), decoder_(decoder)
{
}

std::string
Rs3632Scheme::id() const
{
    switch (decoder_) {
      case Decoder::sscDsdPlus: return "ssc-dsd+";
      case Decoder::sscTsd: return "ssc-tsd";
      case Decoder::dsc: return "dsc";
    }
    panic("unreachable Rs3632Scheme::id");
}

std::string
Rs3632Scheme::name() const
{
    switch (decoder_) {
      case Decoder::sscDsdPlus: return "SSC-DSD+";
      case Decoder::sscTsd: return "SSC-TSD (36,32)";
      case Decoder::dsc: return "DSC (36,32)";
    }
    panic("unreachable Rs3632Scheme::name");
}

int
Rs3632Scheme::physicalByteOf(int pos)
{
    // Check symbols (positions 0..3) take the first byte of each
    // beat; data symbols fill the remaining bytes in order.
    if (pos < 4)
        return 9 * pos;
    const int d = pos - 4;     // data symbol index 0..31
    const int beat = d / 8;
    return 9 * beat + 1 + d % 8;
}

Bits288
Rs3632Scheme::encode(const EntryData& data) const
{
    const auto bytes = dataToBytes(data);
    const std::vector<std::uint8_t> payload(bytes.begin(), bytes.end());
    const std::vector<std::uint8_t> encoded = code_.encode(payload);
    if (!useReferenceCodec()) {
        EntryWords fast;
        for (int pos = 0; pos < 36; ++pos)
            fast.orField(8 * physicalByteOf(pos), encoded[pos]);
        return fast.toBits();
    }
    Bits288 physical;
    for (int pos = 0; pos < 36; ++pos) {
        const int base = 8 * physicalByteOf(pos);
        for (int t = 0; t < 8; ++t) {
            if ((encoded[pos] >> t) & 1)
                physical.set(base + t, 1);
        }
    }
    return physical;
}

EntryDecode
Rs3632Scheme::decode(const Bits288& received) const
{
    std::vector<std::uint8_t> word(36, 0);
    if (useReferenceCodec()) {
        for (int pos = 0; pos < 36; ++pos) {
            const int base = 8 * physicalByteOf(pos);
            std::uint8_t sym = 0;
            for (int t = 0; t < 8; ++t) {
                sym |= static_cast<std::uint8_t>(received.get(base + t))
                       << t;
            }
            word[pos] = sym;
        }
    } else {
        for (int pos = 0; pos < 36; ++pos)
            word[pos] = physByte(received, physicalByteOf(pos));
    }

    RsDecode result = decoder_ == Decoder::dsc
        ? decodeDsc(code_, word)
        : decodeSscDsdPlus(code_, word);
    if (result.status == RsDecode::Status::due)
        return {EntryDecode::Status::due, EntryData{}};

    std::array<std::uint8_t, 32> bytes{};
    for (int pos = 4; pos < 36; ++pos)
        bytes[pos - 4] = result.word[pos];
    return {result.status == RsDecode::Status::corrected
                ? EntryDecode::Status::corrected
                : EntryDecode::Status::clean,
            bytesToData(bytes)};
}

EntryDecode
Rs3632Scheme::decodeWithPinErasure(const Bits288& received,
                                   int pin) const
{
    require(pin >= 0 && pin < layout::num_pins,
            "decodeWithPinErasure: bad pin");

    std::vector<std::uint8_t> word(36, 0);
    std::array<int, 36> pos_of_byte{};
    const bool reference = useReferenceCodec();
    for (int pos = 0; pos < 36; ++pos) {
        pos_of_byte[physicalByteOf(pos)] = pos;
        if (reference) {
            const int base = 8 * physicalByteOf(pos);
            std::uint8_t sym = 0;
            for (int t = 0; t < 8; ++t) {
                sym |= static_cast<std::uint8_t>(received.get(base + t))
                       << t;
            }
            word[pos] = sym;
        } else {
            word[pos] = physByte(received, physicalByteOf(pos));
        }
    }

    // The pin crosses one physical byte per beat.
    std::vector<int> erasures;
    for (int beat = 0; beat < layout::num_beats; ++beat)
        erasures.push_back(pos_of_byte[9 * beat + pin / 8]);

    const RsDecode result = decodeWithErasures(code_, word, erasures);
    if (result.status == RsDecode::Status::due)
        return {EntryDecode::Status::due, EntryData{}};

    std::array<std::uint8_t, 32> bytes{};
    for (int pos = 4; pos < 36; ++pos)
        bytes[pos - 4] = result.word[pos];
    return {result.status == RsDecode::Status::corrected
                ? EntryDecode::Status::corrected
                : EntryDecode::Status::clean,
            bytesToData(bytes)};
}

} // namespace gpuecc
