#include "ecc/rs_scheme.hpp"

#include <algorithm>
#include <cstring>

#include "common/codec_mode.hpp"
#include "common/log.hpp"
#include "ecc/csc.hpp"
#include "gf256/gf256_vec.hpp"
#include "interleave/swizzle.hpp"

namespace gpuecc {

namespace {

/**
 * Word-extracted aligned physical byte B (bits [8B, 8B+8)); byte
 * fields never straddle the 64-bit words of a Bits288.
 */
std::uint8_t
physByte(const Bits288& entry, int b)
{
    return static_cast<std::uint8_t>(entry.word(b >> 3)
                                     >> ((b & 7) * 8));
}

/**
 * Word-extracted 4-bit field at bit offset `off` (off % 4 == 0, so
 * the field never straddles a word boundary).
 */
std::uint8_t
physNibble(const Bits288& entry, int off)
{
    return static_cast<std::uint8_t>(
        (entry.word(off >> 6) >> (off & 63)) & 0xf);
}

/** Accumulator for word-level scatter into a physical entry. */
struct EntryWords
{
    std::array<std::uint64_t, Bits288::numWords> w{};

    void
    orField(int off, std::uint64_t value)
    {
        w[off >> 6] |= value << (off & 63);
    }

    Bits288
    toBits() const
    {
        Bits288 out;
        for (int i = 0; i < Bits288::numWords; ++i)
            out.setWord(i, w[i]);
        return out;
    }
};

/** Entry data words -> 32 bytes (little-endian within each word). */
std::array<std::uint8_t, 32>
dataToBytes(const EntryData& data)
{
    std::array<std::uint8_t, 32> bytes{};
    for (int w = 0; w < 4; ++w) {
        for (int j = 0; j < 8; ++j) {
            bytes[8 * w + j] =
                static_cast<std::uint8_t>(data[w] >> (8 * j));
        }
    }
    return bytes;
}

/** 32 bytes -> entry data words. */
EntryData
bytesToData(const std::array<std::uint8_t, 32>& bytes)
{
    EntryData data{};
    for (int w = 0; w < 4; ++w) {
        for (int j = 0; j < 8; ++j) {
            data[w] |= static_cast<std::uint64_t>(bytes[8 * w + j])
                       << (8 * j);
        }
    }
    return data;
}

/** Per-decodeBatch tile: matches the shard kernel's batch size so
 *  one shard batch is one SoA transpose + one bulk syndrome pass. */
constexpr std::size_t kRsTile = 256;

} // namespace

// ---------------------------------------------------------------------
// InterleavedSscScheme
// ---------------------------------------------------------------------

InterleavedSscScheme::InterleavedSscScheme(bool csc)
    : code_(18, 16), csc_(csc), plan_(code_), isa_(gf256::bestIsa())
{
}

int
InterleavedSscScheme::physicalBit(int cw, int pos, int t)
{
    // Code position -> (beat-pair h, column c); see the header.
    const int h = pos / 9;
    const int j = pos % 9;
    const int c = 2 * j + ((cw + h) % 2);
    const int beat = 2 * h + t / 4;
    const int pin = 4 * c + t % 4;
    return layout::physicalIndex(beat, pin);
}

std::array<std::vector<std::uint8_t>, 2>
InterleavedSscScheme::gatherCodewords(const Bits288& physical) const
{
    std::array<std::vector<std::uint8_t>, 2> cws;
    const bool reference = useReferenceCodec();
    for (int cw = 0; cw < 2; ++cw) {
        cws[cw].assign(18, 0);
        for (int pos = 0; pos < 18; ++pos) {
            std::uint8_t sym = 0;
            if (reference) {
                for (int t = 0; t < 8; ++t) {
                    sym |= static_cast<std::uint8_t>(
                               physical.get(physicalBit(cw, pos, t)))
                           << t;
                }
            } else {
                // A symbol is one 4-bit column slice of each beat of
                // its beat-pair; both nibbles are word-extractable.
                const int lo = physicalBit(cw, pos, 0);
                const int hi = physicalBit(cw, pos, 4);
                sym = static_cast<std::uint8_t>(
                    physNibble(physical, lo)
                    | (physNibble(physical, hi) << 4));
            }
            cws[cw][pos] = sym;
        }
    }
    return cws;
}

Bits288
InterleavedSscScheme::encode(const EntryData& data) const
{
    const auto bytes = dataToBytes(data);
    const bool reference = useReferenceCodec();
    Bits288 physical;
    EntryWords fast;
    for (int cw = 0; cw < 2; ++cw) {
        std::vector<std::uint8_t> payload(bytes.begin() + 16 * cw,
                                          bytes.begin() + 16 * (cw + 1));
        const std::vector<std::uint8_t> encoded = code_.encode(payload);
        for (int pos = 0; pos < 18; ++pos) {
            if (reference) {
                for (int t = 0; t < 8; ++t) {
                    if ((encoded[pos] >> t) & 1)
                        physical.set(physicalBit(cw, pos, t), 1);
                }
            } else {
                fast.orField(physicalBit(cw, pos, 0),
                             encoded[pos] & 0xfull);
                fast.orField(physicalBit(cw, pos, 4),
                             (encoded[pos] >> 4) & 0xfull);
            }
        }
    }
    return reference ? physical : fast.toBits();
}

EntryDecode
InterleavedSscScheme::decode(const Bits288& received) const
{
    return useReferenceCodec() ? decodeReference(received)
                               : decodeFast(received);
}

/**
 * Allocation-free fast decode: nibble-gathered symbols on the stack,
 * syndromes via the plan's precomputed tables, correction decisions
 * from fixSscOneShot. Decision-for-decision identical to the
 * reference path below (the differential tests enforce it).
 */
EntryDecode
InterleavedSscScheme::decodeFast(const Bits288& received) const
{
    std::uint8_t cws[2][18];
    for (int cw = 0; cw < 2; ++cw) {
        for (int pos = 0; pos < 18; ++pos) {
            const int lo = physicalBit(cw, pos, 0);
            const int hi = physicalBit(cw, pos, 4);
            cws[cw][pos] = static_cast<std::uint8_t>(
                physNibble(received, lo)
                | (physNibble(received, hi) << 4));
        }
    }

    RsFix fixes[2];
    int num_correcting = 0;
    for (int cw = 0; cw < 2; ++cw) {
        std::uint8_t s[2];
        plan_.syndromesScalar(cws[cw], s);
        fixes[cw] = fixSscOneShot(18, s);
        if (fixes[cw].status == RsDecode::Status::due)
            return {EntryDecode::Status::due, EntryData{}};
        if (fixes[cw].status == RsDecode::Status::corrected)
            ++num_correcting;
    }

    if (csc_ && num_correcting >= 2) {
        EntryWords corrected;
        for (int cw = 0; cw < 2; ++cw) {
            for (int e = 0; e < fixes[cw].num_errors; ++e) {
                const int pos = fixes[cw].pos[e];
                const std::uint64_t mag = fixes[cw].mag[e];
                corrected.orField(physicalBit(cw, pos, 0), mag & 0xf);
                corrected.orField(physicalBit(cw, pos, 4),
                                  (mag >> 4) & 0xf);
            }
        }
        if (!correctionSanityCheckPasses(corrected.toBits()))
            return {EntryDecode::Status::due, EntryData{}};
    }

    std::array<std::uint8_t, 32> bytes{};
    for (int cw = 0; cw < 2; ++cw) {
        for (int e = 0; e < fixes[cw].num_errors; ++e)
            cws[cw][fixes[cw].pos[e]] ^= fixes[cw].mag[e];
        for (int pos = 2; pos < 18; ++pos)
            bytes[16 * cw + (pos - 2)] = cws[cw][pos];
    }
    return {num_correcting ? EntryDecode::Status::corrected
                           : EntryDecode::Status::clean,
            bytesToData(bytes)};
}

EntryDecode
InterleavedSscScheme::decodeReference(const Bits288& received) const
{
    const auto cws = gatherCodewords(received);
    std::array<RsDecode, 2> results;
    int num_correcting = 0;
    for (int cw = 0; cw < 2; ++cw) {
        results[cw] = decodeSscOneShot(code_, cws[cw]);
        if (results[cw].status == RsDecode::Status::due)
            return {EntryDecode::Status::due, EntryData{}};
        if (results[cw].status == RsDecode::Status::corrected)
            ++num_correcting;
    }

    if (csc_ && num_correcting >= 2) {
        Bits288 corrected_physical;
        for (int cw = 0; cw < 2; ++cw) {
            for (int pos : results[cw].error_positions) {
                const std::uint8_t magnitude = static_cast<std::uint8_t>(
                    results[cw].word[pos] ^ cws[cw][pos]);
                for (int t = 0; t < 8; ++t) {
                    if ((magnitude >> t) & 1)
                        corrected_physical.set(physicalBit(cw, pos, t), 1);
                }
            }
        }
        if (!correctionSanityCheckPasses(corrected_physical))
            return {EntryDecode::Status::due, EntryData{}};
    }

    std::array<std::uint8_t, 32> bytes{};
    for (int cw = 0; cw < 2; ++cw) {
        for (int pos = 2; pos < 18; ++pos)
            bytes[16 * cw + (pos - 2)] = results[cw].word[pos];
    }
    return {num_correcting ? EntryDecode::Status::corrected
                           : EntryDecode::Status::clean,
            bytesToData(bytes)};
}

void
InterleavedSscScheme::decodeBatch(const Bits288* received,
                                  EntryDecode* out, std::size_t n) const
{
    if (useReferenceCodec()) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = decodeReference(received[i]);
        return;
    }
    decodeBatchFast(received, out, n);
}

void
InterleavedSscScheme::decodeBatchFast(const Bits288* received,
                                      EntryDecode* out,
                                      std::size_t n) const
{
    // Column-major symbol staging: cols[cw][pos * kRsTile + e] is
    // symbol `pos` of codeword `cw` of entry `e` in the tile.
    std::uint8_t cols[2][18 * kRsTile];
    std::uint8_t synd[2][2 * kRsTile];
    std::uint8_t suspect[kRsTile];

    for (std::size_t base = 0; base < n; base += kRsTile) {
        const std::size_t count = std::min(kRsTile, n - base);

        for (int cw = 0; cw < 2; ++cw) {
            for (int pos = 0; pos < 18; ++pos) {
                const int lo = physicalBit(cw, pos, 0);
                const int hi = physicalBit(cw, pos, 4);
                std::uint8_t* col = cols[cw] + pos * kRsTile;
                for (std::size_t e = 0; e < count; ++e) {
                    const Bits288& entry = received[base + e];
                    col[e] = static_cast<std::uint8_t>(
                        physNibble(entry, lo)
                        | (physNibble(entry, hi) << 4));
                }
            }
        }

        for (int cw = 0; cw < 2; ++cw)
            plan_.syndromesBulk(isa_, cols[cw], kRsTile, count,
                                synd[cw]);

        // Bulk all-zero-syndrome early-out across both codewords.
        std::memset(suspect, 0, count);
        for (int cw = 0; cw < 2; ++cw) {
            for (int j = 0; j < 2; ++j)
                gf256::orAccBuf(synd[cw] + j * kRsTile, suspect,
                                count);
        }

        for (std::size_t e = 0; e < count; ++e) {
            std::array<std::uint8_t, 32> bytes{};
            if (suspect[e] == 0) {
                for (int cw = 0; cw < 2; ++cw) {
                    for (int pos = 2; pos < 18; ++pos) {
                        bytes[16 * cw + (pos - 2)] =
                            cols[cw][pos * kRsTile + e];
                    }
                }
                out[base + e] = {EntryDecode::Status::clean,
                                 bytesToData(bytes)};
                continue;
            }

            // Suspect: scalar fix from the already-computed
            // syndromes — the same decisions decodeFast() makes.
            RsFix fixes[2];
            int num_correcting = 0;
            bool due = false;
            for (int cw = 0; cw < 2 && !due; ++cw) {
                const std::uint8_t s[2] = {
                    synd[cw][0 * kRsTile + e],
                    synd[cw][1 * kRsTile + e]};
                fixes[cw] = fixSscOneShot(18, s);
                if (fixes[cw].status == RsDecode::Status::due)
                    due = true;
                else if (fixes[cw].status == RsDecode::Status::corrected)
                    ++num_correcting;
            }
            if (due) {
                out[base + e] = {EntryDecode::Status::due, EntryData{}};
                continue;
            }

            if (csc_ && num_correcting >= 2) {
                EntryWords corrected;
                for (int cw = 0; cw < 2; ++cw) {
                    for (int k = 0; k < fixes[cw].num_errors; ++k) {
                        const int pos = fixes[cw].pos[k];
                        const std::uint64_t mag = fixes[cw].mag[k];
                        corrected.orField(physicalBit(cw, pos, 0),
                                          mag & 0xf);
                        corrected.orField(physicalBit(cw, pos, 4),
                                          (mag >> 4) & 0xf);
                    }
                }
                if (!correctionSanityCheckPasses(corrected.toBits())) {
                    out[base + e] = {EntryDecode::Status::due,
                                     EntryData{}};
                    continue;
                }
            }

            for (int cw = 0; cw < 2; ++cw) {
                std::uint8_t word[18];
                for (int pos = 0; pos < 18; ++pos)
                    word[pos] = cols[cw][pos * kRsTile + e];
                for (int k = 0; k < fixes[cw].num_errors; ++k)
                    word[fixes[cw].pos[k]] ^= fixes[cw].mag[k];
                for (int pos = 2; pos < 18; ++pos)
                    bytes[16 * cw + (pos - 2)] = word[pos];
            }
            out[base + e] = {num_correcting
                                 ? EntryDecode::Status::corrected
                                 : EntryDecode::Status::clean,
                             bytesToData(bytes)};
        }
    }
}

EntryDecode
InterleavedSscScheme::decodeWithPinErasure(const Bits288& received,
                                           int pin) const
{
    require(pin >= 0 && pin < layout::num_pins,
            "decodeWithPinErasure: bad pin");
    const auto cws = gatherCodewords(received);
    const int column = pin / 4;

    std::array<RsDecode, 2> results;
    for (int h = 0; h < 2; ++h) {
        const int cw = (column + h) % 2;
        const int pos = 9 * h + column / 2;
        results[cw] = decodeWithErasures(code_, cws[cw], {pos});
        if (results[cw].status == RsDecode::Status::due)
            return {EntryDecode::Status::due, EntryData{}};
    }

    std::array<std::uint8_t, 32> bytes{};
    bool any = false;
    for (int cw = 0; cw < 2; ++cw) {
        any = any || results[cw].status == RsDecode::Status::corrected;
        for (int pos = 2; pos < 18; ++pos)
            bytes[16 * cw + (pos - 2)] = results[cw].word[pos];
    }
    return {any ? EntryDecode::Status::corrected
                : EntryDecode::Status::clean,
            bytesToData(bytes)};
}

// ---------------------------------------------------------------------
// Rs3632Scheme
// ---------------------------------------------------------------------

Rs3632Scheme::Rs3632Scheme(Decoder decoder)
    : code_(36, 32), decoder_(decoder), plan_(code_),
      isa_(gf256::bestIsa())
{
}

std::string
Rs3632Scheme::id() const
{
    switch (decoder_) {
      case Decoder::sscDsdPlus: return "ssc-dsd+";
      case Decoder::sscTsd: return "ssc-tsd";
      case Decoder::dsc: return "dsc";
    }
    panic("unreachable Rs3632Scheme::id");
}

std::string
Rs3632Scheme::name() const
{
    switch (decoder_) {
      case Decoder::sscDsdPlus: return "SSC-DSD+";
      case Decoder::sscTsd: return "SSC-TSD (36,32)";
      case Decoder::dsc: return "DSC (36,32)";
    }
    panic("unreachable Rs3632Scheme::name");
}

int
Rs3632Scheme::physicalByteOf(int pos)
{
    // Check symbols (positions 0..3) take the first byte of each
    // beat; data symbols fill the remaining bytes in order.
    if (pos < 4)
        return 9 * pos;
    const int d = pos - 4;     // data symbol index 0..31
    const int beat = d / 8;
    return 9 * beat + 1 + d % 8;
}

Bits288
Rs3632Scheme::encode(const EntryData& data) const
{
    const auto bytes = dataToBytes(data);
    const std::vector<std::uint8_t> payload(bytes.begin(), bytes.end());
    const std::vector<std::uint8_t> encoded = code_.encode(payload);
    if (!useReferenceCodec()) {
        EntryWords fast;
        for (int pos = 0; pos < 36; ++pos)
            fast.orField(8 * physicalByteOf(pos), encoded[pos]);
        return fast.toBits();
    }
    Bits288 physical;
    for (int pos = 0; pos < 36; ++pos) {
        const int base = 8 * physicalByteOf(pos);
        for (int t = 0; t < 8; ++t) {
            if ((encoded[pos] >> t) & 1)
                physical.set(base + t, 1);
        }
    }
    return physical;
}

EntryDecode
Rs3632Scheme::decode(const Bits288& received) const
{
    return useReferenceCodec() ? decodeReference(received)
                               : decodeFast(received);
}

RsFix
Rs3632Scheme::fixFromSyndromes(const std::uint8_t* s) const
{
    return decoder_ == Decoder::dsc ? fixDsc(36, s)
                                    : fixSscDsdPlus(36, s);
}

/**
 * Allocation-free fast decode: word-extracted symbols on the stack,
 * syndromes via the plan's precomputed tables, correction decisions
 * from the fix functions. Decision-for-decision identical to the
 * reference path below (the differential tests enforce it).
 */
EntryDecode
Rs3632Scheme::decodeFast(const Bits288& received) const
{
    std::uint8_t word[36];
    for (int pos = 0; pos < 36; ++pos)
        word[pos] = physByte(received, physicalByteOf(pos));

    std::uint8_t s[4];
    plan_.syndromesScalar(word, s);
    const RsFix fix = fixFromSyndromes(s);
    if (fix.status == RsDecode::Status::due)
        return {EntryDecode::Status::due, EntryData{}};
    for (int k = 0; k < fix.num_errors; ++k)
        word[fix.pos[k]] ^= fix.mag[k];

    std::array<std::uint8_t, 32> bytes{};
    for (int pos = 4; pos < 36; ++pos)
        bytes[pos - 4] = word[pos];
    return {fix.status == RsDecode::Status::corrected
                ? EntryDecode::Status::corrected
                : EntryDecode::Status::clean,
            bytesToData(bytes)};
}

EntryDecode
Rs3632Scheme::decodeReference(const Bits288& received) const
{
    std::vector<std::uint8_t> word(36, 0);
    for (int pos = 0; pos < 36; ++pos) {
        const int base = 8 * physicalByteOf(pos);
        std::uint8_t sym = 0;
        for (int t = 0; t < 8; ++t) {
            sym |= static_cast<std::uint8_t>(received.get(base + t))
                   << t;
        }
        word[pos] = sym;
    }

    RsDecode result = decoder_ == Decoder::dsc
        ? decodeDsc(code_, word)
        : decodeSscDsdPlus(code_, word);
    if (result.status == RsDecode::Status::due)
        return {EntryDecode::Status::due, EntryData{}};

    std::array<std::uint8_t, 32> bytes{};
    for (int pos = 4; pos < 36; ++pos)
        bytes[pos - 4] = result.word[pos];
    return {result.status == RsDecode::Status::corrected
                ? EntryDecode::Status::corrected
                : EntryDecode::Status::clean,
            bytesToData(bytes)};
}

void
Rs3632Scheme::decodeBatch(const Bits288* received, EntryDecode* out,
                          std::size_t n) const
{
    if (useReferenceCodec()) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = decodeReference(received[i]);
        return;
    }
    decodeBatchFast(received, out, n);
}

void
Rs3632Scheme::decodeBatchFast(const Bits288* received,
                              EntryDecode* out, std::size_t n) const
{
    // Column-major symbol staging: cols[pos * kRsTile + e] is code
    // position `pos` of entry `e` in the tile.
    std::uint8_t cols[36 * kRsTile];
    std::uint8_t synd[4 * kRsTile];
    std::uint8_t suspect[kRsTile];

    for (std::size_t base = 0; base < n; base += kRsTile) {
        const std::size_t count = std::min(kRsTile, n - base);

        for (int pos = 0; pos < 36; ++pos) {
            const int b = physicalByteOf(pos);
            std::uint8_t* col = cols + pos * kRsTile;
            for (std::size_t e = 0; e < count; ++e)
                col[e] = physByte(received[base + e], b);
        }

        plan_.syndromesBulk(isa_, cols, kRsTile, count, synd);

        // Bulk all-zero-syndrome early-out.
        std::memset(suspect, 0, count);
        for (int j = 0; j < 4; ++j)
            gf256::orAccBuf(synd + j * kRsTile, suspect, count);

        for (std::size_t e = 0; e < count; ++e) {
            std::array<std::uint8_t, 32> bytes{};
            if (suspect[e] == 0) {
                for (int pos = 4; pos < 36; ++pos)
                    bytes[pos - 4] = cols[pos * kRsTile + e];
                out[base + e] = {EntryDecode::Status::clean,
                                 bytesToData(bytes)};
                continue;
            }

            // Suspect: scalar fix from the already-computed
            // syndromes — the same decisions decodeFast() makes.
            const std::uint8_t s[4] = {
                synd[0 * kRsTile + e], synd[1 * kRsTile + e],
                synd[2 * kRsTile + e], synd[3 * kRsTile + e]};
            const RsFix fix = fixFromSyndromes(s);
            if (fix.status == RsDecode::Status::due) {
                out[base + e] = {EntryDecode::Status::due, EntryData{}};
                continue;
            }
            std::uint8_t word[36];
            for (int pos = 0; pos < 36; ++pos)
                word[pos] = cols[pos * kRsTile + e];
            for (int k = 0; k < fix.num_errors; ++k)
                word[fix.pos[k]] ^= fix.mag[k];
            for (int pos = 4; pos < 36; ++pos)
                bytes[pos - 4] = word[pos];
            out[base + e] = {fix.status == RsDecode::Status::corrected
                                 ? EntryDecode::Status::corrected
                                 : EntryDecode::Status::clean,
                             bytesToData(bytes)};
        }
    }
}

EntryDecode
Rs3632Scheme::decodeWithPinErasure(const Bits288& received,
                                   int pin) const
{
    require(pin >= 0 && pin < layout::num_pins,
            "decodeWithPinErasure: bad pin");

    std::vector<std::uint8_t> word(36, 0);
    std::array<int, 36> pos_of_byte{};
    const bool reference = useReferenceCodec();
    for (int pos = 0; pos < 36; ++pos) {
        pos_of_byte[physicalByteOf(pos)] = pos;
        if (reference) {
            const int base = 8 * physicalByteOf(pos);
            std::uint8_t sym = 0;
            for (int t = 0; t < 8; ++t) {
                sym |= static_cast<std::uint8_t>(received.get(base + t))
                       << t;
            }
            word[pos] = sym;
        } else {
            word[pos] = physByte(received, physicalByteOf(pos));
        }
    }

    // The pin crosses one physical byte per beat.
    std::vector<int> erasures;
    for (int beat = 0; beat < layout::num_beats; ++beat)
        erasures.push_back(pos_of_byte[9 * beat + pin / 8]);

    const RsDecode result = decodeWithErasures(code_, word, erasures);
    if (result.status == RsDecode::Status::due)
        return {EntryDecode::Status::due, EntryData{}};

    std::array<std::uint8_t, 32> bytes{};
    for (int pos = 4; pos < 36; ++pos)
        bytes[pos - 4] = result.word[pos];
    return {result.status == RsDecode::Status::corrected
                ? EntryDecode::Status::corrected
                : EntryDecode::Status::clean,
            bytesToData(bytes)};
}

} // namespace gpuecc
