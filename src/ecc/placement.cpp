#include "ecc/placement.hpp"

#include <vector>

#include "common/log.hpp"
#include "interleave/swizzle.hpp"

namespace gpuecc {

std::array<int, 256>
dataBitPlacement(const EntryScheme& scheme)
{
    require(scheme.encode(EntryData{}).none(),
            "dataBitPlacement: encoder is affine");

    // terms[p] = data bits feeding physical position p; a data bit's
    // home is the position whose term list is exactly {itself}.
    std::vector<std::vector<int>> terms(layout::entry_bits);
    for (int i = 0; i < 256; ++i) {
        EntryData data{};
        data[i / 64] = std::uint64_t{1} << (i % 64);
        scheme.encode(data).forEachSetBit(
            [&](int p) { terms[p].push_back(i); });
    }

    std::array<int, 256> placement;
    placement.fill(-1);
    for (int p = 0; p < layout::entry_bits; ++p) {
        if (terms[p].size() == 1) {
            const int i = terms[p][0];
            require(placement[i] == -1,
                    "dataBitPlacement: data bit has two pass-through "
                    "positions");
            placement[i] = p;
        }
    }
    for (int i = 0; i < 256; ++i) {
        require(placement[i] >= 0,
                "dataBitPlacement: scheme is not systematic");
    }
    return placement;
}

Bits288
dataMaskToPhysical(const std::array<int, 256>& placement,
                   const Bits<256>& data_mask)
{
    Bits288 physical;
    data_mask.forEachSetBit(
        [&](int i) { physical.set(placement[i], 1); });
    return physical;
}

Bits288
dataMaskAsMatAligned(const Bits<256>& data_mask)
{
    Bits288 physical;
    data_mask.forEachSetBit([&](int i) { physical.set(i, 1); });
    return physical;
}

} // namespace gpuecc
