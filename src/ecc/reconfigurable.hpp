/**
 * @file
 * The reconfigurable DuetECC/TrioECC decoder.
 *
 * Section 6.3 of the paper observes that the SEC-2bEC code is
 * constrained to operate as plain SEC-DED when 2b-symbol correction
 * is not attempted, so a single decoder can implement *both* DuetECC
 * and TrioECC behind an enable signal - "either with a global
 * setting per GPU or potentially on a per-CUDA-context basis,
 * allowing different programs to prioritize error detection or
 * correction". This class is that decoder: one codec whose encode is
 * fixed (the interleaved SEC-2bEC code) and whose decode policy
 * switches at run time.
 */

#ifndef GPUECC_ECC_RECONFIGURABLE_HPP
#define GPUECC_ECC_RECONFIGURABLE_HPP

#include <memory>

#include "ecc/binary_scheme.hpp"
#include "ecc/scheme.hpp"

namespace gpuecc {

/** A single encode path with a Duet/Trio decode-policy switch. */
class ReconfigurableDuetTrio : public EntryScheme
{
  public:
    /** Decode policy (the hardware enable signal). */
    enum class Policy
    {
        duet, //!< detection-oriented: SEC-DED decode + CSC
        trio  //!< correction-oriented: SEC-2bEC decode + CSC
    };

    explicit ReconfigurableDuetTrio(Policy initial = Policy::trio);

    /** Flip the enable signal (e.g. per CUDA context). */
    void setPolicy(Policy policy) { policy_ = policy; }
    Policy policy() const { return policy_; }

    std::string id() const override { return "duet-trio"; }
    std::string name() const override;
    Bits288 encode(const EntryData& data) const override;
    EntryDecode decode(const Bits288& received) const override;
    bool correctsPinErrors() const override { return true; }

  private:
    std::shared_ptr<const Code72> code_;
    std::unique_ptr<const BinaryEntryScheme> duet_;
    std::unique_ptr<const BinaryEntryScheme> trio_;
    Policy policy_;
};

} // namespace gpuecc

#endif // GPUECC_ECC_RECONFIGURABLE_HPP
