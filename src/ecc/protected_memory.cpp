#include "ecc/protected_memory.hpp"

#include "common/log.hpp"

namespace gpuecc {

ProtectedMemory::ProtectedMemory(
    std::shared_ptr<const EntryScheme> scheme,
    std::uint64_t num_entries, bool scrub_on_read)
    : scheme_(std::move(scheme)),
      num_entries_(num_entries),
      scrub_on_read_(scrub_on_read)
{
    require(scheme_ != nullptr, "ProtectedMemory: null scheme");
    require(num_entries > 0, "ProtectedMemory: empty region");
    placement_ = dataBitPlacement(*scheme_);
}

void
ProtectedMemory::write(std::uint64_t index, const EntryData& data)
{
    require(index < num_entries_, "ProtectedMemory: index out of range");
    slots_[index] = {scheme_->encode(data), data};
    ++stats_.writes;
}

ProtectedMemory::ReadResult
ProtectedMemory::read(std::uint64_t index)
{
    require(index < num_entries_, "ProtectedMemory: index out of range");
    ++stats_.reads;

    const auto it = slots_.find(index);
    if (it == slots_.end()) {
        // Unwritten memory reads as zero through a valid codeword.
        return {EntryDecode::Status::clean, EntryData{}, false};
    }

    Slot& slot = it->second;
    const EntryDecode decoded = scheme_->decode(slot.stored);
    switch (decoded.status) {
      case EntryDecode::Status::clean:
        if (decoded.data != slot.golden) {
            ++stats_.sdcs;
            return {decoded.status, decoded.data, true};
        }
        return {decoded.status, decoded.data, false};
      case EntryDecode::Status::corrected: {
        const bool silent = decoded.data != slot.golden;
        if (silent) {
            ++stats_.sdcs; // miscorrection
        } else {
            ++stats_.corrected;
            if (scrub_on_read_) {
                slot.stored = scheme_->encode(decoded.data);
                ++stats_.scrub_fixes;
            }
        }
        return {decoded.status, decoded.data, silent};
      }
      case EntryDecode::Status::due:
        ++stats_.dues;
        return {decoded.status, slot.golden, false};
    }
    panic("unreachable ProtectedMemory::read");
}

void
ProtectedMemory::injectPhysical(std::uint64_t index, const Bits288& mask)
{
    require(index < num_entries_, "ProtectedMemory: index out of range");
    if (mask.none())
        return;
    auto it = slots_.find(index);
    if (it == slots_.end()) {
        // Corrupting unwritten memory: materialize the zero entry.
        slots_[index] = {scheme_->encode(EntryData{}), EntryData{}};
        it = slots_.find(index);
    }
    it->second.stored ^= mask;
}

void
ProtectedMemory::injectStructural(std::uint64_t index,
                                  const Bits<256>& data_mask)
{
    injectPhysical(index, dataMaskAsMatAligned(data_mask));
}

void
ProtectedMemory::injectData(std::uint64_t index,
                            const Bits<256>& data_mask)
{
    injectPhysical(index, dataMaskToPhysical(placement_, data_mask));
}

std::uint64_t
ProtectedMemory::scrub()
{
    std::uint64_t repaired = 0;
    for (auto& [index, slot] : slots_) {
        const EntryDecode decoded = scheme_->decode(slot.stored);
        if (decoded.status == EntryDecode::Status::corrected &&
            decoded.data == slot.golden) {
            slot.stored = scheme_->encode(decoded.data);
            ++repaired;
            ++stats_.scrub_fixes;
        }
    }
    return repaired;
}

} // namespace gpuecc
