#include "ecc/binary_scheme.hpp"

#include "common/log.hpp"
#include "ecc/csc.hpp"

namespace gpuecc {

BinaryEntryScheme::BinaryEntryScheme(std::shared_ptr<const Code72> code,
                                     BinarySchemeConfig config)
    : code_(std::move(code)),
      config_(std::move(config)),
      layout_(config_.interleaved ? EntryLayout::Kind::interleaved
                                  : EntryLayout::Kind::nonInterleaved),
      codec_(code_, layout_, config_.mode, config_.csc)
{
}

Bits288
BinaryEntryScheme::encodeReference(const EntryData& data) const
{
    std::array<Bits72, 4> cws;
    for (int w = 0; w < 4; ++w)
        cws[w] = code_->encodeReference(data[w]);
    return layout_.assemble(cws);
}

EntryDecode
BinaryEntryScheme::decodeReference(const Bits288& received) const
{
    const std::array<Bits72, 4> cws = layout_.disassemble(received);

    std::array<CodewordDecode, 4> results;
    int num_correcting = 0;
    for (int w = 0; w < 4; ++w) {
        results[w] = code_->decodeReference(cws[w], config_.mode);
        if (results[w].status == CodewordDecode::Status::due) {
            // A DUE in any codeword discards the whole entry so that a
            // possible SDC in a sibling codeword cannot escape.
            return {EntryDecode::Status::due, EntryData{}};
        }
        if (results[w].status == CodewordDecode::Status::corrected)
            ++num_correcting;
    }

    if (config_.csc && num_correcting >= 2) {
        Bits288 corrected_physical;
        for (int w = 0; w < 4; ++w) {
            results[w].correction.forEachSetBit([&](int bit) {
                corrected_physical.set(layout_.physicalFor(w, bit), 1);
            });
        }
        if (!correctionSanityCheckPasses(corrected_physical))
            return {EntryDecode::Status::due, EntryData{}};
    }

    EntryData data{};
    for (int w = 0; w < 4; ++w) {
        const Bits72 fixed = cws[w] ^ results[w].correction;
        data[w] = code_->extractData(fixed);
    }
    return {num_correcting ? EntryDecode::Status::corrected
                           : EntryDecode::Status::clean,
            data};
}

EntryDecode
BinaryEntryScheme::decodeWithPinErasure(const Bits288& received,
                                        int pin) const
{
    require(pin >= 0 && pin < layout::num_pins,
            "decodeWithPinErasure: bad pin");
    const std::array<Bits72, 4> cws = layout_.disassemble(received);

    // The checkerboard places exactly one bit of each codeword on
    // every pin.
    std::array<int, 4> erased{};
    erased.fill(-1);
    for (int beat = 0; beat < layout::num_beats; ++beat) {
        const auto [cw, bit] =
            layout_.logicalFor(layout::physicalIndex(beat, pin));
        erased[cw] = bit;
    }

    std::array<CodewordDecode, 4> results;
    int num_correcting = 0;
    for (int w = 0; w < 4; ++w) {
        results[w] = code_->decodeWithErasure(cws[w], erased[w]);
        if (results[w].status == CodewordDecode::Status::due)
            return {EntryDecode::Status::due, EntryData{}};
        // Erasure fills are scheduled repairs; only corrections
        // beyond the diagnosed pin count as suspicious.
        Bits72 beyond = results[w].correction;
        beyond.set(erased[w], 0);
        if (!beyond.none())
            ++num_correcting;
    }

    if (config_.csc && num_correcting >= 2) {
        Bits288 corrected_physical;
        for (int w = 0; w < 4; ++w) {
            Bits72 beyond = results[w].correction;
            beyond.set(erased[w], 0);
            beyond.forEachSetBit([&](int bit) {
                corrected_physical.set(layout_.physicalFor(w, bit), 1);
            });
        }
        if (!correctionSanityCheckPasses(corrected_physical))
            return {EntryDecode::Status::due, EntryData{}};
    }

    EntryData data{};
    bool any = false;
    for (int w = 0; w < 4; ++w) {
        any = any || !results[w].correction.none();
        data[w] = code_->extractData(cws[w] ^ results[w].correction);
    }
    return {any ? EntryDecode::Status::corrected
                : EntryDecode::Status::clean,
            data};
}

} // namespace gpuecc
