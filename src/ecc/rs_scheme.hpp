/**
 * @file
 * Symbol-based (Reed-Solomon) entry-level ECC organizations.
 *
 * InterleavedSscScheme: two (18, 16) SSC codewords per entry with the
 * paper's 4-pin x 2-beat symbol shape and a byte-granularity
 * checkerboard interleave, so a byte error lands as one symbol error
 * in each codeword and a pin error as one symbol error in each
 * codeword - preserving both byte and pin correction. Optionally
 * applies the correction sanity check.
 *
 * Rs3632Scheme: one (36, 32) codeword whose symbols are the physical
 * bytes of the entry (check symbols spread one per beat), decoded as
 * SSC-DSD+ (one-shot three-pair agreement), as DSC
 * (double-symbol-correct PGZ reference), or as SSC-TSD. SSC-TSD is
 * behaviourally identical to SSC-DSD+ at this code length - both are
 * bounded-distance t=1 decoders of a d=5 code - and the paper's
 * distinction between them is the hardware (iterative algebraic vs
 * one-shot), which the hwmodel library captures.
 */

#ifndef GPUECC_ECC_RS_SCHEME_HPP
#define GPUECC_ECC_RS_SCHEME_HPP

#include <array>
#include <string>

#include "ecc/scheme.hpp"
#include "gf256/gf256_vec.hpp"
#include "rs/batch.hpp"
#include "rs/decoders.hpp"
#include "rs/rs_code.hpp"

namespace gpuecc {

/** The paper's interleaved (18, 16) x 2 SSC organization. */
class InterleavedSscScheme : public EntryScheme
{
  public:
    /** @param csc apply the correction sanity check when both
     *             codewords correct */
    explicit InterleavedSscScheme(bool csc);

    std::string id() const override { return csc_ ? "i-ssc-csc" : "i-ssc"; }
    std::string name() const override
    {
        return csc_ ? "I:SSC+CSC" : "I:SSC";
    }
    Bits288 encode(const EntryData& data) const override;
    EntryDecode decode(const Bits288& received) const override;
    bool correctsPinErrors() const override { return true; }

    /**
     * Physical bit of bit `t` (0..7) of code position `pos` of
     * codeword `cw`. Symbols are 4 pins x 2 beats; the codeword
     * assignment of a (column, beat-pair) slot is (column +
     * beat-pair) mod 2, forming the byte-granularity checkerboard.
     */
    static int physicalBit(int cw, int pos, int t);

    /**
     * Erasure-mode decode for a diagnosed pin: the pin crosses one
     * symbol of each codeword, which is re-filled from the
     * syndromes; one residual syndrome per codeword still detects an
     * additional error (d = 3 with one erasure leaves single-error
     * detection, not correction).
     */
    EntryDecode decodeWithPinErasure(const Bits288& received,
                                     int pin) const override;

    /**
     * Batched decode on the SoA/SIMD path: symbols of all entries
     * are gathered column-major, both codewords' syndromes are
     * accumulated with the gf256 bulk kernels, clean entries retire
     * on the bulk all-zero-syndrome test, and only suspects run the
     * scalar one-shot fix. Element-wise identical to decode(); falls
     * back to the per-entry loop under GPUECC_REFERENCE_CODEC.
     */
    void decodeBatch(const Bits288* received, EntryDecode* out,
                     std::size_t n) const override;

  private:
    std::array<std::vector<std::uint8_t>, 2>
    gatherCodewords(const Bits288& physical) const;

    EntryDecode decodeFast(const Bits288& received) const;
    EntryDecode decodeReference(const Bits288& received) const;
    void decodeBatchFast(const Bits288* received, EntryDecode* out,
                         std::size_t n) const;

    RsCode code_;
    bool csc_;
    RsSyndromePlan plan_;       //!< per-(syndrome, position) tables
    gf256::VecIsa isa_;         //!< vector ISA fixed at construction
};

/** The (36, 32) single-codeword organizations. */
class Rs3632Scheme : public EntryScheme
{
  public:
    /** Which decoder drives the organization. */
    enum class Decoder
    {
        sscDsdPlus, //!< the paper's proposed one-shot SSC-DSD+
        sscTsd,     //!< reference; same error-domain behaviour
        dsc         //!< double-symbol-correct PGZ reference
    };

    explicit Rs3632Scheme(Decoder decoder);

    std::string id() const override;
    std::string name() const override;
    Bits288 encode(const EntryData& data) const override;
    EntryDecode decode(const Bits288& received) const override;
    bool correctsPinErrors() const override { return false; }

    /** Physical byte holding code position `pos` (checks are spread
     *  one per beat: positions 0..3 map to bytes 0, 9, 18, 27). */
    static int physicalByteOf(int pos);

    /**
     * Erasure-mode decode for a diagnosed pin: the pin crosses four
     * symbols (one per beat), consuming all four check symbols as
     * erasure fills. This *restores* pin tolerance for SSC-DSD+ -
     * the capability the normal decoder lacks - but leaves no
     * residual detection, so an additional error during the fill is
     * a silent-corruption risk (quantified in the tests).
     */
    EntryDecode decodeWithPinErasure(const Bits288& received,
                                     int pin) const override;

    /**
     * Batched decode on the SoA/SIMD path: the 36 physical symbol
     * columns of all entries are gathered column-major, the four
     * syndromes are accumulated with the gf256 bulk kernels, clean
     * entries retire on the bulk all-zero-syndrome test, and only
     * suspects run the scalar locator/magnitude fix. Element-wise
     * identical to decode(); falls back to the per-entry loop under
     * GPUECC_REFERENCE_CODEC.
     */
    void decodeBatch(const Bits288* received, EntryDecode* out,
                     std::size_t n) const override;

  private:
    EntryDecode decodeFast(const Bits288& received) const;
    EntryDecode decodeReference(const Bits288& received) const;
    void decodeBatchFast(const Bits288* received, EntryDecode* out,
                         std::size_t n) const;
    RsFix fixFromSyndromes(const std::uint8_t* s) const;

    RsCode code_;
    Decoder decoder_;
    RsSyndromePlan plan_;       //!< per-(syndrome, position) tables
    gf256::VecIsa isa_;         //!< vector ISA fixed at construction
};

} // namespace gpuecc

#endif // GPUECC_ECC_RS_SCHEME_HPP
