/**
 * @file
 * Failure-hardened multi-host fleet campaign service.
 *
 * FleetService runs a campaign as a TCP server: it binds
 * spec.fleet_listen, streams the fleet wire protocol to remote agent
 * processes (tools/fleet_agent) that connect, and merges their
 * checkpoint-format results through the same FleetDispatch core as
 * the pipe transport — so the tallies and the CSV report are
 * bit-identical to an in-process run of the same spec, no matter how
 * hosts come and go.
 *
 * Liveness and failure model:
 *  - Every connection is authenticated with an HMAC challenge-response
 *    over spec.fleet_secret before any plan data moves (net/auth.hpp);
 *    a failed proof is rejected and counted (fleet.auth_failures).
 *  - Agents heartbeat while evaluating; a host silent past
 *    spec.fleet_heartbeat_timeout_s is retired and its in-flight unit
 *    requeued (fleet.heartbeat_expiries). An optional per-unit
 *    round-trip deadline (spec.fleet_worker_timeout_s) catches hosts
 *    that beat but never answer (fleet.worker_timeouts).
 *  - Requeues are capped (spec.fleet_max_unit_attempts): a poison
 *    unit is retired into the report instead of cycling forever.
 *  - Degradation ladder: when no agent is connected for
 *    spec.fleet_grace_s, the service engages its local standby forked
 *    workers (spec.fleet_workers of them); when those are gone too,
 *    it finishes the remaining units in-process. The campaign
 *    completes unless interrupted.
 *  - SIGTERM/SIGINT drain gracefully: in-flight units are requeued
 *    into the final checkpoint, agents get shutdown lines, and the
 *    partial result is reported — same contract as the pipe transport.
 */

#ifndef GPUECC_NET_SERVICE_HPP
#define GPUECC_NET_SERVICE_HPP

#include <memory>

#include "common/status.hpp"
#include "net/socket.hpp"
#include "sim/campaign.hpp"

namespace gpuecc::net {

class ObsHttpServer;

class FleetService
{
  public:
    /**
     * Validate the spec and bind the listener (spec.fleet_listen,
     * port 0 for an ephemeral port). Binding before run() lets a
     * caller learn port() first and point agents at it — tests and
     * scripts launch agents before the campaign plan finishes
     * building, and the connects simply wait in the backlog.
     */
    static Result<std::unique_ptr<FleetService>>
    create(const sim::CampaignSpec& spec);

    ~FleetService();

    /** The bound port (the ephemeral one when the spec said 0). */
    int port() const { return listener_.port(); }

    /**
     * The bound observability endpoint port, or -1 when the spec did
     * not ask for one. Like the fleet listener, the endpoint binds in
     * create() so a caller (or test) can learn the port before run();
     * it serves nothing until the campaign starts.
     */
    int obsPort() const;

    /**
     * Run the campaign to completion (or interrupt). Call once, while
     * the process is single-threaded — local standby workers are
     * forked inside. Returns the merged campaign result; errors are
     * unrecoverable setup problems only.
     */
    Result<sim::CampaignResult> run();

  private:
    FleetService() = default;

    sim::CampaignSpec spec_;
    TcpListener listener_;
    std::unique_ptr<ObsHttpServer> obs_server_;
    bool ran_ = false;
};

/** Convenience: create + run (the campaign runner's entry point). */
Result<sim::CampaignResult>
runFleetService(const sim::CampaignSpec& spec);

} // namespace gpuecc::net

#endif // GPUECC_NET_SERVICE_HPP
