#include "net/wire.hpp"

#include <chrono>
#include <thread>

#include "common/subprocess.hpp"
#include "sim/chaos.hpp"

namespace gpuecc::net {

Status
sendWireLine(int fd, const std::string& line, int deadline_ms)
{
    const sim::WireLineFault fault = sim::chaosOnWireLine();
    if (fault.delay_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(fault.delay_ms));
    }
    if (fault.drop)
        return Status();
    // Accept both bare and already-'\n'-terminated lines (the
    // protocol encoders emit the latter).
    std::string payload = line;
    if (!payload.empty() && payload.back() == '\n')
        payload.pop_back();
    if (fault.truncate) {
        // First half only, no terminator: the peer's framing stalls
        // until its read deadline or the next (now-corrupt) line.
        return writeAllFd(fd, payload.substr(0, payload.size() / 2),
                          deadline_ms);
    }
    if (fault.garble) {
        for (char& c : payload)
            c = static_cast<char>(c ^ 0x24);
    }
    payload.push_back('\n');
    Status st = writeAllFd(fd, payload, deadline_ms);
    if (st.ok() && fault.duplicate)
        st = writeAllFd(fd, payload, deadline_ms);
    return st;
}

} // namespace gpuecc::net
