#include "net/auth.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace gpuecc::net {

namespace {

/** SHA-256 round constants (FIPS 180-4 §4.2.2). */
constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

std::uint32_t
rotr(std::uint32_t x, int n)
{
    return (x >> n) | (x << (32 - n));
}

/** One 64-byte block into the running state. */
void
sha256Block(std::uint32_t state[8], const std::uint8_t block[64])
{
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
        w[i] = (std::uint32_t{block[4 * i]} << 24) |
               (std::uint32_t{block[4 * i + 1]} << 16) |
               (std::uint32_t{block[4 * i + 2]} << 8) |
               std::uint32_t{block[4 * i + 3]};
    }
    for (int i = 16; i < 64; ++i) {
        const std::uint32_t s0 = rotr(w[i - 15], 7) ^
                                 rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
        const std::uint32_t s1 = rotr(w[i - 2], 17) ^
                                 rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    std::uint32_t a = state[0], b = state[1], c = state[2],
                  d = state[3], e = state[4], f = state[5],
                  g = state[6], h = state[7];
    for (int i = 0; i < 64; ++i) {
        const std::uint32_t s1 =
            rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        const std::uint32_t ch = (e & f) ^ (~e & g);
        const std::uint32_t t1 = h + s1 + ch + kK[i] + w[i];
        const std::uint32_t s0 =
            rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        const std::uint32_t t2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
}

std::string
toHex(const std::uint8_t* data, std::size_t size)
{
    static const char* digits = "0123456789abcdef";
    std::string out;
    out.reserve(size * 2);
    for (std::size_t i = 0; i < size; ++i) {
        out.push_back(digits[data[i] >> 4]);
        out.push_back(digits[data[i] & 0xF]);
    }
    return out;
}

} // namespace

std::array<std::uint8_t, 32>
sha256(const std::string& data)
{
    std::uint32_t state[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                              0xa54ff53a, 0x510e527f, 0x9b05688c,
                              0x1f83d9ab, 0x5be0cd19};
    const std::uint8_t* bytes =
        reinterpret_cast<const std::uint8_t*>(data.data());
    std::size_t remaining = data.size();
    while (remaining >= 64) {
        sha256Block(state, bytes);
        bytes += 64;
        remaining -= 64;
    }
    // Final block(s): message || 0x80 || zeros || 64-bit bit length.
    std::uint8_t tail[128] = {};
    std::memcpy(tail, bytes, remaining);
    tail[remaining] = 0x80;
    const std::size_t tail_blocks = remaining + 9 <= 64 ? 1 : 2;
    const std::uint64_t bit_length =
        static_cast<std::uint64_t>(data.size()) * 8;
    for (int i = 0; i < 8; ++i) {
        tail[tail_blocks * 64 - 1 - i] =
            static_cast<std::uint8_t>(bit_length >> (8 * i));
    }
    sha256Block(state, tail);
    if (tail_blocks == 2)
        sha256Block(state, tail + 64);
    std::array<std::uint8_t, 32> digest;
    for (int i = 0; i < 8; ++i) {
        digest[4 * i] = static_cast<std::uint8_t>(state[i] >> 24);
        digest[4 * i + 1] = static_cast<std::uint8_t>(state[i] >> 16);
        digest[4 * i + 2] = static_cast<std::uint8_t>(state[i] >> 8);
        digest[4 * i + 3] = static_cast<std::uint8_t>(state[i]);
    }
    return digest;
}

std::string
hmacSha256Hex(const std::string& key, const std::string& message)
{
    // RFC 2104: H((K' ^ opad) || H((K' ^ ipad) || m)), block = 64.
    std::string k = key;
    if (k.size() > 64) {
        const auto digest = sha256(k);
        k.assign(reinterpret_cast<const char*>(digest.data()),
                 digest.size());
    }
    k.resize(64, '\0');
    std::string inner(64, '\0');
    std::string outer(64, '\0');
    for (int i = 0; i < 64; ++i) {
        inner[i] = static_cast<char>(k[i] ^ 0x36);
        outer[i] = static_cast<char>(k[i] ^ 0x5c);
    }
    const auto inner_digest = sha256(inner + message);
    const auto outer_digest = sha256(
        outer + std::string(reinterpret_cast<const char*>(
                                inner_digest.data()),
                            inner_digest.size()));
    return toHex(outer_digest.data(), outer_digest.size());
}

std::string
makeNonceHex()
{
    std::uint8_t bytes[32];
#if defined(__unix__) || defined(__APPLE__)
    if (FILE* urandom = std::fopen("/dev/urandom", "rb")) {
        const std::size_t got =
            std::fread(bytes, 1, sizeof(bytes), urandom);
        std::fclose(urandom);
        if (got == sizeof(bytes))
            return toHex(bytes, sizeof(bytes));
    }
#endif
    // Fallback: unique (clock + pid + counter), if less unpredictable.
    static std::atomic<std::uint64_t> counter{0};
    const std::uint64_t now = static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    std::uint64_t pid = 0;
#if defined(__unix__) || defined(__APPLE__)
    pid = static_cast<std::uint64_t>(getpid());
#endif
    const std::string seed =
        std::to_string(now) + "/" + std::to_string(pid) + "/" +
        std::to_string(counter.fetch_add(1));
    const auto digest = sha256(seed);
    return toHex(digest.data(), digest.size());
}

bool
constantTimeEquals(const std::string& a, const std::string& b)
{
    if (a.size() != b.size())
        return false;
    unsigned char acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        acc = static_cast<unsigned char>(
            acc | (static_cast<unsigned char>(a[i]) ^
                   static_cast<unsigned char>(b[i])));
    }
    return acc == 0;
}

std::string
agentMac(const std::string& secret, const std::string& nonce_hex,
         const std::string& agent_name)
{
    return hmacSha256Hex(secret, "gpuecc-fleet-agent\n" + nonce_hex +
                                     "\n" + agent_name);
}

std::string
serverMac(const std::string& secret, const std::string& nonce_hex)
{
    return hmacSha256Hex(secret, "gpuecc-fleet-server\n" + nonce_hex);
}

} // namespace gpuecc::net
