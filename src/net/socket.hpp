/**
 * @file
 * Minimal TCP primitives for the fleet campaign service.
 *
 * Status-based wrappers over the POSIX socket surface, shaped for the
 * fleet wire protocol: a listener that polls for connections with a
 * timeout (so the accept loop can also watch the interrupt flag and
 * the drain condition), and a blocking IPv4 connect for the agent.
 * Everything stays at the fd level — framing, deadlines, and bounded
 * reads come from common/subprocess's LineReader/writeAllFd, which
 * work on any stream fd. On non-POSIX platforms every entry point
 * reports unavailable, mirroring the subprocess helpers.
 */

#ifndef GPUECC_NET_SOCKET_HPP
#define GPUECC_NET_SOCKET_HPP

#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace gpuecc::net {

/** Whether this build can open sockets (POSIX only). */
bool socketsSupported();

/**
 * An address as "host:port". Host may be empty or "*" (any
 * interface); port 0 asks the OS for an ephemeral port.
 */
struct SocketAddress
{
    std::string host;
    int port = 0;
};

/** Parse "host:port" ("127.0.0.1:7077", ":0", "*:7077"). */
Result<SocketAddress> parseSocketAddress(const std::string& text);

/** A bound, listening TCP socket (IPv4). Closes on destruction. */
class TcpListener
{
  public:
    TcpListener() = default;
    ~TcpListener();
    TcpListener(TcpListener&& other) noexcept;
    TcpListener& operator=(TcpListener&& other) noexcept;
    TcpListener(const TcpListener&) = delete;
    TcpListener& operator=(const TcpListener&) = delete;

    /**
     * Bind and listen on @p address (SO_REUSEADDR so a restarted
     * service reclaims its port without waiting out TIME_WAIT).
     */
    static Result<TcpListener> listen(const SocketAddress& address);

    /** The bound port — the ephemeral one when address.port was 0. */
    int port() const { return port_; }

    /** The listening fd (for a forked child's close list). */
    int fd() const { return fd_; }

    /**
     * Wait up to @p timeout_ms for a connection and accept it:
     * the connected fd on success, unavailable with the deadline
     * message (isDeadlineExpired) when nothing arrived in time.
     */
    Result<int> accept(int timeout_ms);

    /** Stop accepting (idempotent); pending connects see a reset. */
    void close();

  private:
    int fd_ = -1;
    int port_ = 0;
};

/**
 * Blocking IPv4 TCP connect; resolves numeric or name hosts. An
 * empty host means loopback. Returns the connected fd.
 */
Result<int> connectTcp(const SocketAddress& address);

} // namespace gpuecc::net

#endif // GPUECC_NET_SOCKET_HPP
