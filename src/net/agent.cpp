#include "net/agent.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "common/interrupt.hpp"
#include "common/log.hpp"
#include "common/subprocess.hpp"
#include "fleet/protocol.hpp"
#include "fleet/worker.hpp"
#include "net/auth.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace gpuecc::net {

namespace fleet = sim::fleet;

namespace {

/** Budget for each handshake step (mirrors the server's). */
constexpr int kHandshakeMs = 10000;

/** Sleep @p seconds in small slices, bailing on interrupt. */
void
interruptibleSleep(double seconds)
{
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(seconds));
    while (!interruptRequested() &&
           std::chrono::steady_clock::now() < until) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
}

/** One connect + handshake + serve round. */
enum class RoundEnd
{
    drained,   //!< shutdown line or interrupt: exit 0
    reconnect, //!< transient loss: back off and try again
    auth,      //!< authentication failed (either direction): no retry
    setup,     //!< plan didn't validate locally: no retry
};

RoundEnd
serveOnce(const FleetAgentOptions& opts, const std::string& name,
          bool* handshook)
{
    Result<int> connected = connectTcp({opts.host, opts.port});
    if (!connected.ok()) {
        warn("agent: " + connected.status().toString());
        return RoundEnd::reconnect;
    }
    int fd = connected.value();
    LineReader reader(fd, fleet::kMaxWireLineBytes);

    // --- Handshake ---------------------------------------------------
    const auto fail = [&](const std::string& why, RoundEnd end) {
        warn("agent: " + why);
        closeFd(fd);
        return end;
    };
    Result<std::string> line = reader.readLine(kHandshakeMs);
    if (!line.ok())
        return fail("no challenge: " + line.status().toString(),
                    RoundEnd::reconnect);
    Result<std::string> nonce = fleet::decodeChallengeLine(line.value());
    if (!nonce.ok())
        return fail("bad challenge: " + nonce.status().toString(),
                    RoundEnd::reconnect);
    if (Status s = sendWireLine(
            fd,
            fleet::encodeAuthLine(
                name, agentMac(opts.secret, nonce.value(), name)),
            kHandshakeMs);
        !s.ok())
        return fail("cannot answer challenge: " + s.toString(),
                    RoundEnd::reconnect);
    line = reader.readLine(kHandshakeMs);
    if (!line.ok())
        return fail("no welcome: " + line.status().toString(),
                    RoundEnd::reconnect);
    Result<fleet::Welcome> welcome =
        fleet::decodeWelcomeLine(line.value());
    if (!welcome.ok()) {
        // An auth_error line decodes as failedPrecondition — the
        // secret is wrong, and retrying only hammers the server.
        if (welcome.status().code() == ErrorCode::failedPrecondition)
            return fail("rejected: " + welcome.status().toString(),
                        RoundEnd::auth);
        return fail("bad welcome: " + welcome.status().toString(),
                    RoundEnd::reconnect);
    }
    if (!constantTimeEquals(welcome.value().mac,
                            serverMac(opts.secret, nonce.value()))) {
        // Mutual auth: a listener that cannot prove it holds the
        // secret does not get to feed this agent a plan.
        return fail("server failed mutual authentication",
                    RoundEnd::auth);
    }
    line = reader.readLine(kHandshakeMs);
    if (!line.ok())
        return fail("no config: " + line.status().toString(),
                    RoundEnd::reconnect);
    Result<fleet::FleetConfig> config =
        fleet::decodeConfigLine(line.value());
    if (!config.ok())
        return fail("bad config: " + config.status().toString(),
                    RoundEnd::reconnect);
    *handshook = true;

    // --- Serve -------------------------------------------------------
    const int io_ms = std::max(
        1, static_cast<int>(opts.io_timeout_s * 1000.0));
    fleet::ServeOptions serve;
    serve.session_lines = true;
    serve.heartbeats = true;
    serve.heartbeat_interval_ms = std::max(
        1, static_cast<int>(opts.heartbeat_interval_s * 1000.0));
    serve.read_deadline_ms = io_ms;
    const fleet::ServeEnd end = fleet::serveFleetUnits(
        config.value(), reader,
        [fd, io_ms](const std::string& out) {
            return sendWireLine(fd, out, io_ms);
        },
        serve);
    closeFd(fd);
    switch (end) {
      case fleet::ServeEnd::shutdown:
        return RoundEnd::drained;
      case fleet::ServeEnd::setup:
        return RoundEnd::setup;
      case fleet::ServeEnd::eof:
      case fleet::ServeEnd::silent:
      case fleet::ServeEnd::protocol:
        break;
    }
    warn("agent: lost the server (" +
         std::string(end == fleet::ServeEnd::silent
                         ? "wire went silent"
                         : "stream ended") +
         "); will reconnect");
    return RoundEnd::reconnect;
}

} // namespace

int
runFleetAgent(const FleetAgentOptions& opts)
{
    std::string name = opts.name;
    if (name.empty()) {
        long pid = 0;
#if defined(__unix__) || defined(__APPLE__)
        pid = static_cast<long>(getpid());
#endif
        name = "agent-" + std::to_string(pid);
    }

    double backoff = opts.backoff_initial_s;
    int failures = 0;
    for (;;) {
        if (interruptRequested())
            return 0;
        bool handshook = false;
        const RoundEnd end = serveOnce(opts, name, &handshook);
        if (handshook) {
            // A full handshake proves the server is the real one and
            // was alive moments ago: restart the backoff schedule.
            backoff = opts.backoff_initial_s;
            failures = 0;
        }
        switch (end) {
          case RoundEnd::drained:
            return 0;
          case RoundEnd::auth:
            return kAgentAuthExit;
          case RoundEnd::setup:
            return fleet::kWorkerSetupExit;
          case RoundEnd::reconnect:
            break;
        }
        ++failures;
        if (opts.max_reconnects >= 0 &&
            failures > opts.max_reconnects) {
            warn("agent: giving up after " + std::to_string(failures) +
                 " failed rounds");
            return kAgentLostServerExit;
        }
        interruptibleSleep(backoff);
        backoff = std::min(backoff * 2.0, opts.backoff_max_s);
    }
}

} // namespace gpuecc::net
