/**
 * @file
 * Remote fleet worker agent (the client side of net/service).
 *
 * An agent connects to a running fleet campaign service,
 * authenticates with the shared secret (mutually — it refuses to
 * serve a listener that cannot prove it holds the secret too), and
 * then serves work units with the same loop as a forked pipe worker,
 * plus heartbeats and a read deadline so a dead server is detected.
 *
 * Connection loss is normal life, not an error: the agent reconnects
 * with exponential backoff (reset after every successful handshake)
 * until the server drains it with a shutdown line, an interrupt asks
 * it to stop, or the reconnect budget runs out. An authentication
 * failure is the one non-retryable outcome — retrying a wrong secret
 * only hammers the server.
 */

#ifndef GPUECC_NET_AGENT_HPP
#define GPUECC_NET_AGENT_HPP

#include <string>

namespace gpuecc::net {

/** Process exit code for an authentication failure (no retry). */
constexpr int kAgentAuthExit = 2;

/** Process exit code when the reconnect budget ran out. */
constexpr int kAgentLostServerExit = 5;

/** Knobs for one agent process (tools/fleet_agent maps flags here). */
struct FleetAgentOptions
{
    std::string host;   //!< empty = loopback
    int port = 0;
    std::string secret; //!< must match the server's --fleet-secret
    std::string name;   //!< empty = "agent-<pid>"
    /** Beat interval; keep it a small fraction of the server's
        --fleet-heartbeat-timeout (default pairs 2s with 10s). */
    double heartbeat_interval_s = 2.0;
    /** Max wire silence before the server is presumed dead. */
    double io_timeout_s = 30.0;
    double backoff_initial_s = 0.5;
    double backoff_max_s = 30.0;
    /** Consecutive failed connect/serve rounds before giving up;
        -1 retries forever (a daemonized lab agent). */
    int max_reconnects = 10;
};

/**
 * Run the agent until drained: returns a process exit code — 0 for a
 * graceful shutdown (server drain or interrupt), kAgentAuthExit,
 * kAgentLostServerExit, or fleet::kWorkerSetupExit when the server's
 * plan doesn't validate locally (fingerprint mismatch).
 */
int runFleetAgent(const FleetAgentOptions& options);

} // namespace gpuecc::net

#endif // GPUECC_NET_AGENT_HPP
