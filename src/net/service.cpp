#include "net/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/interrupt.hpp"
#include "common/log.hpp"
#include "common/subprocess.hpp"
#include "fleet/dispatch.hpp"
#include "fleet/pipe.hpp"
#include "fleet/protocol.hpp"
#include "net/auth.hpp"
#include "net/obs_http.hpp"
#include "net/wire.hpp"
#include "obs/exposition.hpp"
#include "sim/chaos.hpp"
#include "sim/report.hpp"

namespace gpuecc::net {

namespace fleet = sim::fleet;

namespace {

using Clock = std::chrono::steady_clock;

/** Budget for each handshake step (a connect is cheap to retry). */
constexpr int kHandshakeMs = 5000;

/** Idle poll slice: accept loop and idle liaisons wake this often. */
constexpr int kPollMs = 200;

int
elapsedMs(Clock::time_point since)
{
    return static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - since)
            .count());
}

/** One authenticated agent connection and its liaison state. */
struct RemoteHost
{
    int fd = -1;
    std::unique_ptr<LineReader> reader;
    obs::FleetWorkerRecord record;
    std::thread thread;
};

/** The /status document: one DispatchStatus snapshot as JSON. */
std::string
renderStatusJson(const fleet::DispatchStatus& s)
{
    sim::JsonWriter w;
    w.beginObject();
    w.key("units").beginObject();
    w.kv("total", s.units_total);
    w.kv("settled", s.units_settled);
    w.kv("resumed", s.units_resumed);
    w.kv("in_flight", s.units_in_flight);
    w.kv("queue_depth", s.queue_depth);
    w.endObject();
    w.key("shards").beginObject();
    w.kv("total", s.shards_total);
    w.kv("done", s.shards_done);
    w.endObject();
    w.kv("trials_done", s.trials_done);
    w.key("fleet").beginObject();
    w.kv("requeues", s.requeues);
    w.kv("units_poisoned", s.poisoned);
    w.kv("duplicate_results", s.duplicates);
    w.kv("workers_lost", s.workers_lost);
    w.kv("worker_timeouts", s.worker_timeouts);
    w.kv("heartbeat_expiries", s.heartbeat_expiries);
    w.kv("agents_connected", s.agents_connected);
    w.kv("auth_failures", s.auth_failures);
    w.endObject();
    w.kv("elapsed_seconds", s.elapsed_seconds);
    w.kv("units_per_second", s.units_per_second);
    w.kv("eta_seconds", s.eta_seconds);
    w.key("hosts").beginArray();
    for (const fleet::HostStatus& h : s.hosts) {
        w.beginObject();
        w.kv("worker", static_cast<std::uint64_t>(
                           h.worker < 0 ? 0 : h.worker));
        w.kv("label", h.label);
        w.kv("remote", h.remote);
        w.kv("units", h.units);
        w.kv("shards", h.shards);
        w.kv("trials", h.trials);
        w.kv("busy_seconds", static_cast<double>(h.busy_us) * 1e-6);
        w.kv("units_per_second",
             s.elapsed_seconds > 0.0
                 ? static_cast<double>(h.units) / s.elapsed_seconds
                 : 0.0);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

/** The /metrics document: the same snapshot as Prometheus text. */
std::string
renderMetricsText(const fleet::DispatchStatus& s)
{
    std::vector<obs::PromSample> samples = {
        {"fleet.units_total", s.units_total},
        {"fleet.units_settled", s.units_settled},
        {"fleet.units_in_flight", s.units_in_flight},
        {"fleet.shards_total", s.shards_total},
        {"fleet.shards_done", s.shards_done},
        {"fleet.trials_done", s.trials_done},
        {"fleet.units_requeued", s.requeues},
        {"fleet.units_poisoned", s.poisoned},
        {"fleet.duplicate_results", s.duplicates},
        {"fleet.workers_lost", s.workers_lost},
        {"fleet.worker_timeouts", s.worker_timeouts},
        {"fleet.heartbeat_expiries", s.heartbeat_expiries},
        {"fleet.agents_connected", s.agents_connected},
        {"fleet.auth_failures", s.auth_failures},
    };
    // Slots merge by label so a reconnecting agent reports one series
    // per metric, same as the finalize-time merge.
    std::vector<std::pair<std::string, fleet::HostStatus>> merged;
    for (const fleet::HostStatus& h : s.hosts) {
        auto it = std::find_if(
            merged.begin(), merged.end(),
            [&](const auto& m) { return m.first == h.label; });
        if (it == merged.end()) {
            merged.emplace_back(h.label, h);
            continue;
        }
        it->second.units += h.units;
        it->second.shards += h.shards;
        it->second.trials += h.trials;
    }
    for (const auto& [label, h] : merged) {
        const std::string prefix = "fleet.host." + label + ".";
        samples.push_back({prefix + "units", h.units});
        samples.push_back({prefix + "shards", h.shards});
        samples.push_back({prefix + "trials", h.trials});
    }
    return obs::renderPrometheusText(samples);
}

} // namespace

Result<std::unique_ptr<FleetService>>
FleetService::create(const sim::CampaignSpec& spec)
{
    if (!socketsSupported() || !subprocessSupported()) {
        return Status::unavailable(
            "the fleet service needs sockets and fork/pipe, which "
            "this platform lacks; run without --fleet-listen");
    }
    Result<SocketAddress> address =
        parseSocketAddress(spec.fleet_listen);
    if (!address.ok())
        return address.status();
    Result<TcpListener> listener = TcpListener::listen(address.value());
    if (!listener.ok())
        return listener.status();
    auto service = std::unique_ptr<FleetService>(new FleetService());
    service->spec_ = spec;
    service->listener_ = std::move(listener.value());
    // The observability endpoint binds here too, so callers can learn
    // obsPort() before run() — and so its fd exists before the local
    // standby fork and can go on the children's close list.
    if (!spec.obs_listen.empty()) {
        Result<SocketAddress> obs_address =
            parseSocketAddress(spec.obs_listen);
        if (!obs_address.ok())
            return obs_address.status();
        Result<std::unique_ptr<ObsHttpServer>> obs =
            ObsHttpServer::create(obs_address.value());
        if (!obs.ok())
            return obs.status();
        service->obs_server_ = std::move(obs).value();
        inform("fleet: observability endpoint on port " +
               std::to_string(service->obs_server_->port()) +
               " (/metrics, /status)");
    }
    return service;
}

FleetService::~FleetService() = default;

int
FleetService::obsPort() const
{
    return obs_server_ != nullptr ? obs_server_->port() : -1;
}

Result<sim::CampaignResult>
FleetService::run()
{
    require(!ran_, "fleet service: run() called twice");
    ran_ = true;

    Result<std::unique_ptr<fleet::FleetDispatch>> created =
        fleet::FleetDispatch::create(spec_);
    if (!created.ok())
        return created.status();
    fleet::FleetDispatch& dispatch = *created.value();

    // The service always drains on SIGTERM/SIGINT: in-flight units
    // are requeued, agents get shutdown lines, the partial result is
    // reported. (The in-process runner installs these only when
    // checkpointing; a network service should never die mid-write.)
    ignoreSigpipe();
    installInterruptHandlers();

    // ---- Fork phase -------------------------------------------------
    // Local standby workers fork now, while the process is still
    // single-threaded; they sit blocked on their config'd pipes until
    // the degradation ladder engages them (or never, if agents carry
    // the campaign). The listening socket must not leak into them.
    // The observability endpoint (bound in create()) serves nothing
    // until the campaign threads exist, but its fd must go on the
    // children's close list.
    const std::uint64_t pending = dispatch.initialPendingUnits();
    const int local_count =
        pending == 0 ? 0
                     : static_cast<int>(std::min<std::uint64_t>(
                           static_cast<std::uint64_t>(
                               spec_.fleet_workers),
                           pending));
    std::vector<std::unique_ptr<fleet::PipeWorker>> locals;
    std::vector<int> inherited_fds = {listener_.fd()};
    if (obs_server_)
        inherited_fds.push_back(obs_server_->fd());
    for (int w = 0; w < local_count; ++w) {
        auto worker = std::make_unique<fleet::PipeWorker>();
        fleet::spawnPipeWorker(dispatch, *worker, w, inherited_fds);
        locals.push_back(std::move(worker));
    }

    // Threads are safe from here on.
    dispatch.start();
    if (obs_server_) {
        obs_server_->serve([&dispatch](const std::string& path) {
            ObsResponse out;
            if (path == "/metrics") {
                out.found = true;
                out.content_type = "text/plain; version=0.0.4";
                out.body = renderMetricsText(dispatch.status());
            } else if (path == "/status") {
                out.found = true;
                out.content_type = "application/json";
                out.body = renderStatusJson(dispatch.status());
            }
            return out;
        });
    }

    const int unit_deadline_ms =
        spec_.fleet_worker_timeout_s > 0
            ? static_cast<int>(spec_.fleet_worker_timeout_s * 1000.0)
            : -1;
    const int heartbeat_ms = std::max(
        1, static_cast<int>(spec_.fleet_heartbeat_timeout_s * 1000.0));
    const int grace_ms = std::max(
        0, static_cast<int>(spec_.fleet_grace_s * 1000.0));

    std::atomic<int> active_remote{0};
    std::atomic<int> active_local{0};
    std::atomic<bool> draining{false};

    // Retire a remote host: requeue nothing here — callers requeue
    // the in-flight unit first, with the specific reason.
    const auto loseHost = [&](RemoteHost& H, const std::string& why) {
        warn("fleet: losing agent '" + H.record.agent + "' (worker " +
             std::to_string(H.record.worker) + "): " + why);
        closeFd(H.fd);
        H.record.lost = true;
        dispatch.noteWorkerLost();
    };

    const auto sendShutdown = [&](RemoteHost& H) {
        // Best-effort: a host that is already gone just fails the
        // write, which is fine — we are hanging up either way.
        (void)sendWireLine(H.fd, fleet::encodeShutdownLine(), 1000);
        closeFd(H.fd);
    };

    // One liaison thread per authenticated agent. Mirrors the pipe
    // liaison, plus the session layer: heartbeats refresh a liveness
    // deadline, silence retires the host, results for units settled
    // elsewhere are discarded as duplicates.
    const auto runRemoteLiaison = [&](RemoteHost& H) {
        auto last_heard = Clock::now();

        // Read one line while idle or awaiting, watching liveness.
        // Returns false when the host was lost (liaison must end).
        const auto classifyDead = [&](const Status& st,
                                      std::uint64_t* in_flight,
                                      bool* dead) {
            *dead = true;
            if (isDeadlineExpired(st)) {
                if (elapsedMs(last_heard) < heartbeat_ms) {
                    *dead = false; // still within its liveness budget
                    return;
                }
                dispatch.noteHeartbeatExpiry();
                if (in_flight != nullptr)
                    dispatch.requeueUnit(*in_flight,
                                         "agent heartbeats stopped");
                loseHost(H, "heartbeats stopped");
                return;
            }
            if (in_flight != nullptr)
                dispatch.requeueUnit(*in_flight, st.toString());
            loseHost(H, st.toString());
        };

        for (;;) {
            if (interruptRequested() || draining.load() ||
                dispatch.allSettled()) {
                sendShutdown(H);
                break;
            }
            std::uint64_t u = 0;
            if (!dispatch.tryClaim(u)) {
                // Nothing to hand out right now (the last units are
                // in flight elsewhere): drain heartbeats and stray
                // telemetry, watch for silence, stay subscribed.
                Result<std::string> line = H.reader->readLine(kPollMs);
                if (line.ok()) {
                    last_heard = Clock::now();
                    Result<fleet::WorkerMessage> idle =
                        fleet::decodeWorkerLine(line.value());
                    if (idle.ok()) {
                        if (idle.value().kind ==
                            fleet::WorkerMessage::Kind::telemetry)
                            dispatch.absorbTelemetry(idle.value());
                        else if (idle.value().kind ==
                                 fleet::WorkerMessage::Kind::heartbeat)
                            dispatch.noteHeartbeat(
                                idle.value().worker,
                                idle.value().now_us);
                    }
                    continue;
                }
                bool dead = false;
                classifyDead(line.status(), nullptr, &dead);
                if (dead)
                    return;
                continue;
            }

            const fleet::WorkUnit& unit = dispatch.unit(u);
            dispatch.noteUnitDispatched(u, H.record.worker);
            const auto dispatch_at = Clock::now();
            if (Status sent = sendWireLine(
                    H.fd, fleet::encodeUnitLine(unit), heartbeat_ms);
                !sent.ok()) {
                dispatch.requeueUnit(u, sent.toString());
                loseHost(H, sent.toString());
                return;
            }

            for (;;) { // await this unit's settlement
                if (interruptRequested() || draining.load()) {
                    dispatch.requeueUnit(
                        u, "graceful drain with the unit in flight");
                    sendShutdown(H);
                    return;
                }
                if (unit_deadline_ms > 0 &&
                    elapsedMs(dispatch_at) >= unit_deadline_ms) {
                    dispatch.noteWorkerTimeout();
                    dispatch.requeueUnit(u, "unit round-trip deadline");
                    loseHost(H, "unit " + std::to_string(u) +
                                    " exceeded its round-trip "
                                    "deadline");
                    return;
                }
                int slice = kPollMs;
                if (unit_deadline_ms > 0) {
                    slice = std::min(
                        slice, std::max(1, unit_deadline_ms -
                                               elapsedMs(dispatch_at)));
                }
                Result<std::string> line = H.reader->readLine(slice);
                if (!line.ok()) {
                    bool dead = false;
                    classifyDead(line.status(), &u, &dead);
                    if (dead)
                        return;
                    continue;
                }
                last_heard = Clock::now();
                Result<fleet::WorkerMessage> decoded =
                    fleet::decodeWorkerLine(line.value());
                if (!decoded.ok()) {
                    // Garbage on an authenticated stream: treat the
                    // host as corrupt, not the campaign.
                    dispatch.requeueUnit(u,
                                         decoded.status().toString());
                    loseHost(H, decoded.status().toString());
                    return;
                }
                const fleet::WorkerMessage& msg = decoded.value();
                if (msg.kind ==
                    fleet::WorkerMessage::Kind::heartbeat) {
                    dispatch.noteHeartbeat(msg.worker, msg.now_us);
                    continue;
                }
                if (msg.kind ==
                    fleet::WorkerMessage::Kind::telemetry) {
                    // Shipped ahead of the settlement it accompanies;
                    // merge and keep awaiting.
                    dispatch.absorbTelemetry(msg);
                    continue;
                }
                if (msg.kind ==
                    fleet::WorkerMessage::Kind::worker_error) {
                    dispatch.requeueUnit(u, msg.message);
                    loseHost(H, msg.message);
                    return;
                }
                if (msg.kind ==
                    fleet::WorkerMessage::Kind::unit_error) {
                    dispatch.failUnit(msg.unit, msg.message);
                    if (msg.unit == u)
                        break;
                    continue;
                }
                // A result line. It may name a unit other than the
                // one in flight — a replayed or duplicated delivery
                // for a unit that settled elsewhere. completeUnit
                // discards those idempotently (fleet.duplicate_results).
                if (msg.unit >= dispatch.unitCount()) {
                    dispatch.requeueUnit(u, "result names unknown unit " +
                                                std::to_string(msg.unit));
                    loseHost(H, "result for unknown unit");
                    return;
                }
                if (Status valid =
                        dispatch.validateResult(msg.unit, msg);
                    !valid.ok()) {
                    dispatch.requeueUnit(u, valid.toString());
                    loseHost(H, valid.toString());
                    return;
                }
                const auto done_at = Clock::now();
                if (dispatch.completeUnit(msg.unit, msg, dispatch_at,
                                          done_at) &&
                    msg.unit == u) {
                    H.record.units += 1;
                    H.record.shards += unit.task_count;
                    for (const sim::CheckpointEntry& e :
                         msg.checkpoint.done)
                        H.record.trials += e.counts.trials;
                    H.record.busy_seconds +=
                        static_cast<double>(msg.busy_us) * 1e-6;
                }
                if (msg.unit == u)
                    break;
            }
        }
    };

    // Challenge-response handshake on a fresh connection; fills the
    // host's record (worker index, agent name) and primes its reader.
    const auto handshake = [&](int fd,
                               RemoteHost& H) -> Status {
        H.fd = fd;
        H.reader = std::make_unique<LineReader>(
            fd, fleet::kMaxWireLineBytes);
        const std::string nonce = makeNonceHex();
        if (Status s = sendWireLine(
                fd, fleet::encodeChallengeLine(nonce), kHandshakeMs);
            !s.ok())
            return s;
        Result<std::string> line = H.reader->readLine(kHandshakeMs);
        if (!line.ok())
            return line.status();
        Result<fleet::AuthRequest> auth =
            fleet::decodeAuthLine(line.value());
        if (!auth.ok())
            return auth.status();
        if (!constantTimeEquals(
                auth.value().mac,
                agentMac(spec_.fleet_secret, nonce,
                         auth.value().agent))) {
            (void)sendWireLine(
                fd,
                fleet::encodeAuthErrorLine("authentication failed"),
                1000);
            return Status::failedPrecondition(
                "agent '" + auth.value().agent +
                "' failed authentication");
        }
        H.record.agent = auth.value().agent;
        H.record.remote = true;
        if (Status s = sendWireLine(
                fd,
                fleet::encodeWelcomeLine(
                    H.record.worker,
                    serverMac(spec_.fleet_secret, nonce)),
                kHandshakeMs);
            !s.ok())
            return s;
        if (Status s = sendWireLine(
                fd,
                fleet::encodeConfigLine(
                    dispatch.configFor(H.record.worker)),
                kHandshakeMs);
            !s.ok())
            return s;
        // Registration is the clock-rebasing reference: the host's
        // telemetry timestamps count from its config receipt, which
        // happened within one network hop of right now.
        dispatch.registerHost(H.record.worker, H.record.agent, true);
        return Status{};
    };

    // ---- Accept / lifecycle loop ------------------------------------
    std::vector<std::unique_ptr<RemoteHost>> hosts;
    int agent_seq = 0;
    bool locals_engaged = false;
    auto last_activity = Clock::now();

    while (pending != 0) {
        if (interruptRequested() || dispatch.allSettled())
            break;

        // Degradation ladder: no connected agent for the grace window
        // engages the local standby workers; when those are gone too
        // (or never existed), fall through to in-process completion.
        if (active_remote.load() == 0 &&
            elapsedMs(last_activity) >= grace_ms) {
            if (!locals_engaged) {
                locals_engaged = true;
                last_activity = Clock::now();
                int engaged = 0;
                for (auto& worker : locals) {
                    if (!worker->spawned)
                        continue;
                    active_local.fetch_add(1);
                    ++engaged;
                    worker->thread = std::thread(
                        [&dispatch, &active_local,
                         unit_deadline_ms](fleet::PipeWorker& w) {
                            fleet::runPipeLiaison(dispatch, w,
                                                  unit_deadline_ms);
                            active_local.fetch_sub(1);
                        },
                        std::ref(*worker));
                }
                if (engaged > 0) {
                    warn("fleet: no agent connected for " +
                         std::to_string(grace_ms / 1000) +
                         "s; engaging " + std::to_string(engaged) +
                         " local standby worker(s)");
                    continue;
                }
            }
            if (active_local.load() == 0) {
                warn("fleet: no remote or local host left; finishing "
                     "the remaining units in-process");
                break;
            }
        }

        Result<int> accepted = listener_.accept(kPollMs);
        if (!accepted.ok()) {
            if (isDeadlineExpired(accepted.status()))
                continue;
            warn("fleet: accept failed: " +
                 accepted.status().toString());
            break;
        }

        auto host = std::make_unique<RemoteHost>();
        host->record.worker = spec_.fleet_workers + agent_seq;
        if (Status s = handshake(accepted.value(), *host); !s.ok()) {
            if (s.code() == ErrorCode::failedPrecondition)
                dispatch.noteAuthFailure();
            warn("fleet: rejecting connection: " + s.toString());
            closeFd(host->fd);
            continue;
        }
        ++agent_seq;
        last_activity = Clock::now();
        dispatch.noteAgentConnected();
        active_remote.fetch_add(1);
        RemoteHost& H = *host;
        H.thread = std::thread([&runRemoteLiaison, &active_remote,
                                &H]() {
            runRemoteLiaison(H);
            active_remote.fetch_sub(1);
        });
        hosts.push_back(std::move(host));
    }

    // ---- Drain ------------------------------------------------------
    draining.store(true);
    listener_.close();
    for (auto& host : hosts) {
        if (host->thread.joinable())
            host->thread.join();
    }
    for (auto& worker : locals) {
        if (worker->thread.joinable())
            worker->thread.join();
    }
    for (auto& worker : locals)
        fleet::reapPipeWorker(*worker);

    // Last rung: whatever is still pending runs right here. A no-op
    // when the campaign settled or an interrupt asked us to stop.
    dispatch.finishInProcess();

    // The endpoint outlives the liaisons (a curl mid-drain is fine)
    // but not finalize, which consumes the dispatcher.
    if (obs_server_)
        obs_server_->stop();

    std::vector<obs::FleetWorkerRecord> records;
    for (const auto& worker : locals)
        records.push_back(worker->record);
    for (const auto& host : hosts)
        records.push_back(host->record);
    // Count before the move: argument evaluation order is unspecified,
    // so records.size() inside the call could see the moved-out vector.
    const int worker_count = static_cast<int>(records.size());
    return dispatch.finalize(worker_count, std::move(records));
}

Result<sim::CampaignResult>
runFleetService(const sim::CampaignSpec& spec)
{
    Result<std::unique_ptr<FleetService>> service =
        FleetService::create(spec);
    if (!service.ok())
        return service.status();
    return service.value()->run();
}

} // namespace gpuecc::net
