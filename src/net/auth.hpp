/**
 * @file
 * Shared-secret authentication for the fleet service handshake.
 *
 * The campaign server and its agents prove possession of a shared
 * secret with an HMAC-SHA-256 challenge-response: the server sends a
 * per-connection random nonce, the agent answers with
 * HMAC(secret, "gpuecc-fleet-agent\n" + nonce + "\n" + name), and the
 * server's welcome carries HMAC(secret, "gpuecc-fleet-server\n" +
 * nonce) so authentication is mutual — a rogue listener cannot feed a
 * bogus plan to an agent that checks the proof. The secret itself
 * never travels, and MACs are compared in constant time. SHA-256 is
 * implemented here (FIPS 180-4) because the toolchain ships no crypto
 * library and the repo takes no external dependencies; it is used for
 * authentication only, never for confidentiality — the wire itself is
 * plaintext, suitable for trusted lab networks and loopback CI.
 */

#ifndef GPUECC_NET_AUTH_HPP
#define GPUECC_NET_AUTH_HPP

#include <array>
#include <cstdint>
#include <string>

namespace gpuecc::net {

/** SHA-256 digest of @p data (FIPS 180-4). */
std::array<std::uint8_t, 32> sha256(const std::string& data);

/** HMAC-SHA-256 (RFC 2104) of @p message under @p key, hex-encoded. */
std::string hmacSha256Hex(const std::string& key,
                          const std::string& message);

/**
 * A fresh random nonce, hex-encoded (32 bytes of entropy). Reads
 * /dev/urandom; falls back to a clock/pid/counter hash where that is
 * unavailable — still unique per connection, just less unpredictable.
 */
std::string makeNonceHex();

/** Constant-time string equality (for MAC comparison). */
bool constantTimeEquals(const std::string& a, const std::string& b);

/** The agent's proof for a challenge nonce. */
std::string agentMac(const std::string& secret,
                     const std::string& nonce_hex,
                     const std::string& agent_name);

/** The server's mutual-auth proof for the same nonce. */
std::string serverMac(const std::string& secret,
                      const std::string& nonce_hex);

} // namespace gpuecc::net

#endif // GPUECC_NET_AUTH_HPP
