#include "net/obs_http.hpp"

#include <utility>

#include "common/subprocess.hpp"

namespace gpuecc::net {

namespace {

/** Accept poll granularity — also the stop() latency bound. */
constexpr int kPollMs = 200;
/** Per-read and per-write deadline for one HTTP exchange. */
constexpr int kIoDeadlineMs = 2000;
/** Request-line and header-line size cap. */
constexpr std::size_t kMaxRequestLineBytes = 8192;
/** Header lines tolerated before the blank line. */
constexpr int kMaxHeaderLines = 100;

/** "GET /path HTTP/1.1" -> "/path"; empty on anything else. */
std::string
parseRequestPath(const std::string& request_line)
{
    if (request_line.rfind("GET ", 0) != 0)
        return "";
    const std::size_t path_begin = 4;
    const std::size_t path_end = request_line.find(' ', path_begin);
    if (path_end == std::string::npos || path_end == path_begin)
        return "";
    if (request_line.compare(path_end + 1, 5, "HTTP/") != 0)
        return "";
    return request_line.substr(path_begin, path_end - path_begin);
}

std::string
httpResponse(int code, const std::string& reason,
             const std::string& content_type, const std::string& body)
{
    return "HTTP/1.1 " + std::to_string(code) + " " + reason +
           "\r\nContent-Type: " + content_type +
           "\r\nContent-Length: " + std::to_string(body.size()) +
           "\r\nConnection: close\r\n\r\n" + body;
}

} // namespace

Result<std::unique_ptr<ObsHttpServer>>
ObsHttpServer::create(const SocketAddress& address)
{
    Result<TcpListener> listener = TcpListener::listen(address);
    if (!listener.ok())
        return listener.status();
    auto server = std::unique_ptr<ObsHttpServer>(new ObsHttpServer());
    server->listener_ = std::move(listener).value();
    return server;
}

ObsHttpServer::~ObsHttpServer() { stop(); }

void
ObsHttpServer::serve(ObsHandler handler)
{
    handler_ = std::move(handler);
    serving_ = true;
    thread_ = std::thread([this] { acceptLoop(); });
}

void
ObsHttpServer::stop()
{
    if (!serving_)
        return;
    serving_ = false;
    stopping_.store(true, std::memory_order_release);
    thread_.join();
    listener_.close();
}

void
ObsHttpServer::acceptLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        Result<int> accepted = listener_.accept(kPollMs);
        if (!accepted.ok())
            continue; // deadline tick or transient error; poll again
        int fd = accepted.value();

        // One bounded request per connection. Anything that is not a
        // clean GET within the deadlines — truncated bytes, garbage,
        // an oversized request line, a stalled sender — just closes
        // the connection; the campaign never notices.
        LineReader reader(fd, kMaxRequestLineBytes);
        Result<std::string> request = reader.readLine(kIoDeadlineMs);
        if (!request.ok()) {
            closeFd(fd);
            continue;
        }
        std::string request_line = request.value();
        if (!request_line.empty() && request_line.back() == '\r')
            request_line.pop_back();
        const std::string path = parseRequestPath(request_line);

        bool clean = !path.empty();
        for (int h = 0; clean && h < kMaxHeaderLines; ++h) {
            Result<std::string> header = reader.readLine(kIoDeadlineMs);
            if (!header.ok()) {
                // EOF before the blank line still gets a response —
                // curl --http1.0 style clients may shut down their
                // write side early. Deadlines and oversize do not.
                clean = header.status().code() == ErrorCode::notFound;
                break;
            }
            if (header.value().empty() || header.value() == "\r")
                break;
        }

        std::string response;
        if (!clean && path.empty()) {
            response = httpResponse(400, "Bad Request",
                                    "text/plain; charset=utf-8",
                                    "bad request\n");
        } else if (!clean) {
            closeFd(fd);
            continue;
        } else {
            const ObsResponse out = handler_(path);
            response =
                out.found
                    ? httpResponse(200, "OK", out.content_type,
                                   out.body)
                    : httpResponse(404, "Not Found",
                                   "text/plain; charset=utf-8",
                                   "not found\n");
        }
        // Best-effort write: a peer that stopped reading hits the
        // deadline and is dropped.
        writeAllFd(fd, response, kIoDeadlineMs);
        closeFd(fd);
    }
}

} // namespace gpuecc::net
