/**
 * @file
 * Read-only HTTP exposition endpoint for a live fleet campaign.
 *
 * A deliberately tiny HTTP/1.1 server (GET only, one request per
 * connection, Connection: close) that serves whatever the registered
 * handler renders — the campaign service mounts /metrics (Prometheus
 * text) and /status (JSON) on it. It reuses the fleet's socket RAII
 * and the LineReader's bounded, deadline-guarded reads, so a slow,
 * hostile, or chaos-garbled client can never hold the thread: every
 * read and write carries a ~2 s deadline and the request line is
 * capped at 8 KiB (an oversized or unparsable request just closes the
 * connection).
 *
 * Responses go through plain writeAllFd, NOT sendWireLine: the
 * endpoint must not consume chaos wire-line indices, or curling
 * /metrics mid-run would shift which fleet protocol line a
 * deterministic net_* chaos fault lands on.
 */

#ifndef GPUECC_NET_OBS_HTTP_HPP
#define GPUECC_NET_OBS_HTTP_HPP

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "common/status.hpp"
#include "net/socket.hpp"

namespace gpuecc::net {

/** What a handler returns for one GET path. */
struct ObsResponse
{
    bool found = false; //!< false renders a 404
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
};

/** Renders one GET path; called on the server thread, must be
    thread-safe against the campaign it samples. */
using ObsHandler = std::function<ObsResponse(const std::string& path)>;

class ObsHttpServer
{
  public:
    /** Bind the endpoint (no thread yet — bind before forking and add
        fd() to the children's close list). */
    static Result<std::unique_ptr<ObsHttpServer>>
    create(const SocketAddress& address);

    ~ObsHttpServer();

    ObsHttpServer(const ObsHttpServer&) = delete;
    ObsHttpServer& operator=(const ObsHttpServer&) = delete;

    /** The bound port (ephemeral when the address said 0). */
    int port() const { return listener_.port(); }

    /** The listening fd, for a forked child's close list. */
    int fd() const { return listener_.fd(); }

    /** Start serving @p handler on a background thread. */
    void serve(ObsHandler handler);

    /** Stop accepting and join the thread (idempotent). */
    void stop();

  private:
    ObsHttpServer() = default;
    void acceptLoop();

    TcpListener listener_;
    ObsHandler handler_;
    std::atomic<bool> stopping_{false};
    std::thread thread_;
    bool serving_ = false;
};

} // namespace gpuecc::net

#endif // GPUECC_NET_OBS_HTTP_HPP
