/**
 * @file
 * Chaos-aware wire-line sender for the fleet service.
 *
 * Every protocol line that crosses a socket goes through
 * sendWireLine, which consults the chaos harness before writing so a
 * test can deterministically drop, duplicate, truncate, garble, or
 * delay the Nth wire line a process emits (see sim/chaos.hpp's
 * net_* keys). With no chaos armed it is just writeAllFd of
 * line + '\n' under the caller's deadline.
 */

#ifndef GPUECC_NET_WIRE_HPP
#define GPUECC_NET_WIRE_HPP

#include <string>

#include "common/status.hpp"

namespace gpuecc::net {

/**
 * Write @p line plus a terminating newline to @p fd, honoring an
 * optional deadline (milliseconds; <= 0 blocks) and any armed
 * network chaos fault for this wire-line index. A dropped line
 * reports ok — the fault models a lost datagram, and the failure has
 * to surface at the peer's read deadline, not at the sender.
 */
Status sendWireLine(int fd, const std::string& line,
                    int deadline_ms = -1);

} // namespace gpuecc::net

#endif // GPUECC_NET_WIRE_HPP
