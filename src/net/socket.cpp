#include "net/socket.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define GPUECC_HAS_SOCKETS 1
#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define GPUECC_HAS_SOCKETS 0
#endif

namespace gpuecc::net {

bool
socketsSupported()
{
    return GPUECC_HAS_SOCKETS != 0;
}

Result<SocketAddress>
parseSocketAddress(const std::string& text)
{
    const std::size_t colon = text.rfind(':');
    if (colon == std::string::npos) {
        return Status::invalidArgument(
            "address '" + text + "' is not host:port");
    }
    SocketAddress out;
    out.host = text.substr(0, colon);
    if (out.host == "*")
        out.host.clear();
    const std::string port_text = text.substr(colon + 1);
    if (port_text.empty()) {
        return Status::invalidArgument(
            "address '" + text + "' has no port");
    }
    errno = 0;
    char* end = nullptr;
    const long port = std::strtol(port_text.c_str(), &end, 10);
    if (errno == ERANGE || end != port_text.c_str() + port_text.size() ||
        port < 0 || port > 65535) {
        return Status::invalidArgument(
            "address '" + text + "' has a bad port '" + port_text +
            "'");
    }
    out.port = static_cast<int>(port);
    return out;
}

#if GPUECC_HAS_SOCKETS

namespace {

constexpr const char* kDeadlineMessage = "io deadline expired";

/** Resolve an IPv4 sockaddr for host (empty/any handled by caller). */
Result<sockaddr_in>
resolveIpv4(const std::string& host, int port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (host.empty()) {
        addr.sin_addr.s_addr = htonl(INADDR_ANY);
        return addr;
    }
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1)
        return addr;
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* found = nullptr;
    const int rc = getaddrinfo(host.c_str(), nullptr, &hints, &found);
    if (rc != 0 || found == nullptr) {
        return Status::notFound("cannot resolve host '" + host +
                                "': " + gai_strerror(rc));
    }
    addr.sin_addr =
        reinterpret_cast<sockaddr_in*>(found->ai_addr)->sin_addr;
    freeaddrinfo(found);
    return addr;
}

} // namespace

TcpListener::~TcpListener()
{
    close();
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_)
{
    other.fd_ = -1;
}

TcpListener&
TcpListener::operator=(TcpListener&& other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        port_ = other.port_;
        other.fd_ = -1;
    }
    return *this;
}

Result<TcpListener>
TcpListener::listen(const SocketAddress& address)
{
    Result<sockaddr_in> addr = resolveIpv4(address.host, address.port);
    if (!addr.ok())
        return addr.status();
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        return Status::ioError(std::string("socket: ") +
                               std::strerror(errno));
    }
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa = addr.value();
    if (bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
        const int err = errno;
        ::close(fd);
        return Status::ioError("bind " + address.host + ":" +
                               std::to_string(address.port) + ": " +
                               std::strerror(err));
    }
    if (::listen(fd, 16) != 0) {
        const int err = errno;
        ::close(fd);
        return Status::ioError(std::string("listen: ") +
                               std::strerror(err));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
        const int err = errno;
        ::close(fd);
        return Status::ioError(std::string("getsockname: ") +
                               std::strerror(err));
    }
    TcpListener out;
    out.fd_ = fd;
    out.port_ = static_cast<int>(ntohs(bound.sin_port));
    return out;
}

Result<int>
TcpListener::accept(int timeout_ms)
{
    if (fd_ < 0)
        return Status::unavailable("listener is closed");
    struct pollfd p;
    p.fd = fd_;
    p.events = POLLIN;
    p.revents = 0;
    for (;;) {
        const int r = poll(&p, 1, timeout_ms);
        if (r < 0) {
            if (errno == EINTR)
                return Status::unavailable(kDeadlineMessage);
            return Status::ioError(std::string("poll: ") +
                                   std::strerror(errno));
        }
        if (r == 0)
            return Status::unavailable(kDeadlineMessage);
        break;
    }
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
        if (errno == EINTR || errno == EAGAIN ||
            errno == EWOULDBLOCK || errno == ECONNABORTED)
            return Status::unavailable(kDeadlineMessage);
        return Status::ioError(std::string("accept: ") +
                               std::strerror(errno));
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

void
TcpListener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Result<int>
connectTcp(const SocketAddress& address)
{
    const std::string host =
        address.host.empty() ? "127.0.0.1" : address.host;
    Result<sockaddr_in> addr = resolveIpv4(host, address.port);
    if (!addr.ok())
        return addr.status();
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        return Status::ioError(std::string("socket: ") +
                               std::strerror(errno));
    }
    sockaddr_in sa = addr.value();
    for (;;) {
        if (connect(fd, reinterpret_cast<sockaddr*>(&sa),
                    sizeof(sa)) == 0)
            break;
        if (errno == EINTR)
            continue;
        const int err = errno;
        ::close(fd);
        return Status::unavailable("connect " + host + ":" +
                                   std::to_string(address.port) +
                                   ": " + std::strerror(err));
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

#else // !GPUECC_HAS_SOCKETS

namespace {
Status
unsupported()
{
    return Status::unavailable(
        "sockets are not supported on this platform");
}
} // namespace

TcpListener::~TcpListener() = default;

TcpListener::TcpListener(TcpListener&&) noexcept {}

TcpListener&
TcpListener::operator=(TcpListener&&) noexcept
{
    return *this;
}

Result<TcpListener>
TcpListener::listen(const SocketAddress&)
{
    return unsupported();
}

Result<int>
TcpListener::accept(int)
{
    return unsupported();
}

void
TcpListener::close()
{
}

Result<int>
connectTcp(const SocketAddress&)
{
    return unsupported();
}

#endif // GPUECC_HAS_SOCKETS

} // namespace gpuecc::net
