/**
 * @file
 * SSSE3 and AVX2 lowerings of the GF(2^8) bulk kernels.
 *
 * Every function carries a per-function `target` attribute, so this
 * translation unit compiles under the project's baseline flags and
 * the wide instructions only ever execute after
 * __builtin_cpu_supports() said the host has them. That keeps -mavx2
 * out of the global build while still shipping both widths in one
 * binary.
 */

#include "gf256/gf256_vec_impl.hpp"

#if GPUECC_VEC_X86

#include <immintrin.h>

namespace gpuecc {
namespace gf256 {
namespace detail {

bool
cpuHasSsse3()
{
    return __builtin_cpu_supports("ssse3") != 0;
}

bool
cpuHasAvx2()
{
    return __builtin_cpu_supports("avx2") != 0;
}

namespace {

__attribute__((target("ssse3"))) inline __m128i
mulVec128(__m128i x, __m128i tlo, __m128i thi, __m128i low_mask)
{
    const __m128i lo = _mm_and_si128(x, low_mask);
    const __m128i hi =
        _mm_and_si128(_mm_srli_epi64(x, 4), low_mask);
    return _mm_xor_si128(_mm_shuffle_epi8(tlo, lo),
                         _mm_shuffle_epi8(thi, hi));
}

__attribute__((target("avx2"))) inline __m256i
mulVec256(__m256i x, __m256i tlo, __m256i thi, __m256i low_mask)
{
    const __m256i lo = _mm256_and_si256(x, low_mask);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi64(x, 4), low_mask);
    return _mm256_xor_si256(_mm256_shuffle_epi8(tlo, lo),
                            _mm256_shuffle_epi8(thi, hi));
}

} // namespace

__attribute__((target("ssse3"))) void
mulConstBufSsse3(const MulTables& t, const std::uint8_t* src,
                 std::uint8_t* dst, std::size_t n)
{
    const __m128i tlo =
        _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
    const __m128i thi =
        _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
    const __m128i low_mask = _mm_set1_epi8(0x0F);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i x = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(src + i));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                         mulVec128(x, tlo, thi, low_mask));
    }
    mulConstBufScalar(t, src, dst, i, n);
}

__attribute__((target("avx2"))) void
mulConstBufAvx2(const MulTables& t, const std::uint8_t* src,
                std::uint8_t* dst, std::size_t n)
{
    const __m256i tlo = _mm256_broadcastsi128_si256(
        _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo)));
    const __m256i thi = _mm256_broadcastsi128_si256(
        _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi)));
    const __m256i low_mask = _mm256_set1_epi8(0x0F);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            mulVec256(x, tlo, thi, low_mask));
    }
    mulConstBufScalar(t, src, dst, i, n);
}

__attribute__((target("ssse3"))) void
mulConstXorAccBufSsse3(const MulTables& t, const std::uint8_t* src,
                       std::uint8_t* acc, std::size_t n)
{
    const __m128i tlo =
        _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
    const __m128i thi =
        _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
    const __m128i low_mask = _mm_set1_epi8(0x0F);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i x = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(src + i));
        const __m128i a = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(acc + i));
        _mm_storeu_si128(
            reinterpret_cast<__m128i*>(acc + i),
            _mm_xor_si128(a, mulVec128(x, tlo, thi, low_mask)));
    }
    mulConstXorAccBufScalar(t, src, acc, i, n);
}

__attribute__((target("avx2"))) void
mulConstXorAccBufAvx2(const MulTables& t, const std::uint8_t* src,
                      std::uint8_t* acc, std::size_t n)
{
    const __m256i tlo = _mm256_broadcastsi128_si256(
        _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo)));
    const __m256i thi = _mm256_broadcastsi128_si256(
        _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi)));
    const __m256i low_mask = _mm256_set1_epi8(0x0F);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(src + i));
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(acc + i));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(acc + i),
            _mm256_xor_si256(a, mulVec256(x, tlo, thi, low_mask)));
    }
    mulConstXorAccBufScalar(t, src, acc, i, n);
}

/*
 * Arbitrary 256-entry LUT: the table is staged as sixteen 16-byte
 * rows; for each row r the bytes whose high nibble equals r are
 * selected with a compare mask and looked up with one shuffle of that
 * row keyed by the low nibble. Sixteen rounds of cmpeq+shuffle+and
 * beat a gather on every in-order path this project cares about, and
 * the pattern is identical on NEON (vqtbl4q pairs).
 */
__attribute__((target("ssse3"))) void
lut256BufSsse3(const std::uint8_t* table, const std::uint8_t* src,
               std::uint8_t* dst, std::size_t n)
{
    __m128i rows[16];
    for (int r = 0; r < 16; ++r)
        rows[r] = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(table + 16 * r));
    const __m128i low_mask = _mm_set1_epi8(0x0F);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i x = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(src + i));
        const __m128i lo = _mm_and_si128(x, low_mask);
        const __m128i hi =
            _mm_and_si128(_mm_srli_epi64(x, 4), low_mask);
        __m128i out = _mm_setzero_si128();
        for (int r = 0; r < 16; ++r) {
            const __m128i is_row =
                _mm_cmpeq_epi8(hi, _mm_set1_epi8(static_cast<char>(r)));
            out = _mm_or_si128(
                out,
                _mm_and_si128(is_row, _mm_shuffle_epi8(rows[r], lo)));
        }
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), out);
    }
    lut256BufScalar(table, src, dst, i, n);
}

__attribute__((target("avx2"))) void
lut256BufAvx2(const std::uint8_t* table, const std::uint8_t* src,
              std::uint8_t* dst, std::size_t n)
{
    __m256i rows[16];
    for (int r = 0; r < 16; ++r)
        rows[r] = _mm256_broadcastsi128_si256(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(table + 16 * r)));
    const __m256i low_mask = _mm256_set1_epi8(0x0F);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(src + i));
        const __m256i lo = _mm256_and_si256(x, low_mask);
        const __m256i hi =
            _mm256_and_si256(_mm256_srli_epi64(x, 4), low_mask);
        __m256i out = _mm256_setzero_si256();
        for (int r = 0; r < 16; ++r) {
            const __m256i is_row = _mm256_cmpeq_epi8(
                hi, _mm256_set1_epi8(static_cast<char>(r)));
            out = _mm256_or_si256(
                out, _mm256_and_si256(
                         is_row, _mm256_shuffle_epi8(rows[r], lo)));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), out);
    }
    lut256BufScalar(table, src, dst, i, n);
}

} // namespace detail
} // namespace gf256
} // namespace gpuecc

#endif // GPUECC_VEC_X86
