/**
 * @file
 * NEON lowerings of the GF(2^8) bulk kernels (aarch64 baseline —
 * AdvSIMD is architectural there, so no runtime probe is needed).
 *
 * The nibble-split multiply is the same two-shuffle/one-XOR shape as
 * the x86 kernels, lowered to vqtbl1q_u8. The arbitrary 256-entry
 * LUT uses the four-register table form: two vqtbl4q_u8 lookups
 * cover the low and high 128 table entries, with the high lookup
 * keyed by index-128 so out-of-range lanes yield zero and the two
 * halves OR together.
 */

#include "gf256/gf256_vec_impl.hpp"

#if GPUECC_VEC_NEON

#include <arm_neon.h>

namespace gpuecc {
namespace gf256 {
namespace detail {

namespace {

inline uint8x16_t
mulVec(uint8x16_t x, uint8x16_t tlo, uint8x16_t thi,
       uint8x16_t low_mask)
{
    const uint8x16_t lo = vandq_u8(x, low_mask);
    const uint8x16_t hi = vshrq_n_u8(x, 4);
    return veorq_u8(vqtbl1q_u8(tlo, lo), vqtbl1q_u8(thi, hi));
}

} // namespace

void
mulConstBufNeon(const MulTables& t, const std::uint8_t* src,
                std::uint8_t* dst, std::size_t n)
{
    const uint8x16_t tlo = vld1q_u8(t.lo);
    const uint8x16_t thi = vld1q_u8(t.hi);
    const uint8x16_t low_mask = vdupq_n_u8(0x0F);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16)
        vst1q_u8(dst + i, mulVec(vld1q_u8(src + i), tlo, thi, low_mask));
    mulConstBufScalar(t, src, dst, i, n);
}

void
mulConstXorAccBufNeon(const MulTables& t, const std::uint8_t* src,
                      std::uint8_t* acc, std::size_t n)
{
    const uint8x16_t tlo = vld1q_u8(t.lo);
    const uint8x16_t thi = vld1q_u8(t.hi);
    const uint8x16_t low_mask = vdupq_n_u8(0x0F);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint8x16_t a = vld1q_u8(acc + i);
        vst1q_u8(acc + i,
                 veorq_u8(a, mulVec(vld1q_u8(src + i), tlo, thi,
                                    low_mask)));
    }
    mulConstXorAccBufScalar(t, src, acc, i, n);
}

void
lut256BufNeon(const std::uint8_t* table, const std::uint8_t* src,
              std::uint8_t* dst, std::size_t n)
{
    uint8x16x4_t lo_rows;
    uint8x16x4_t hi_rows;
    for (int r = 0; r < 4; ++r) {
        lo_rows.val[r] = vld1q_u8(table + 16 * r);
        hi_rows.val[r] = vld1q_u8(table + 64 + 16 * r);
    }
    uint8x16x4_t lo2_rows;
    uint8x16x4_t hi2_rows;
    for (int r = 0; r < 4; ++r) {
        lo2_rows.val[r] = vld1q_u8(table + 128 + 16 * r);
        hi2_rows.val[r] = vld1q_u8(table + 192 + 16 * r);
    }
    const uint8x16_t k64 = vdupq_n_u8(64);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint8x16_t x = vld1q_u8(src + i);
        // Quadrant q covers table[64q, 64q+64); tbl4 zeroes lanes
        // whose rebased index exceeds 63, so the ORs are disjoint.
        uint8x16_t idx = x;
        uint8x16_t out = vqtbl4q_u8(lo_rows, idx);
        idx = vsubq_u8(idx, k64);
        out = vorrq_u8(out, vqtbl4q_u8(hi_rows, idx));
        idx = vsubq_u8(idx, k64);
        out = vorrq_u8(out, vqtbl4q_u8(lo2_rows, idx));
        idx = vsubq_u8(idx, k64);
        out = vorrq_u8(out, vqtbl4q_u8(hi2_rows, idx));
        vst1q_u8(dst + i, out);
    }
    lut256BufScalar(table, src, dst, i, n);
}

} // namespace detail
} // namespace gf256
} // namespace gpuecc

#endif // GPUECC_VEC_NEON
