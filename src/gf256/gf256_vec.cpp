#include "gf256/gf256_vec.hpp"

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/log.hpp"
#include "gf256/gf256.hpp"
#include "gf256/gf256_vec_impl.hpp"

namespace gpuecc {
namespace gf256 {

namespace detail {

void
mulConstBufScalar(const MulTables& t, const std::uint8_t* src,
                  std::uint8_t* dst, std::size_t i, std::size_t n)
{
    for (; i < n; ++i)
        dst[i] = mulTab(t, src[i]);
}

void
mulConstXorAccBufScalar(const MulTables& t, const std::uint8_t* src,
                        std::uint8_t* acc, std::size_t i,
                        std::size_t n)
{
    for (; i < n; ++i)
        acc[i] ^= mulTab(t, src[i]);
}

void
lut256BufScalar(const std::uint8_t* table, const std::uint8_t* src,
                std::uint8_t* dst, std::size_t i, std::size_t n)
{
    for (; i < n; ++i)
        dst[i] = table[src[i]];
}

} // namespace detail

const char*
isaName(VecIsa isa)
{
    switch (isa) {
      case VecIsa::scalar: return "scalar";
      case VecIsa::ssse3: return "ssse3";
      case VecIsa::avx2: return "avx2";
      case VecIsa::neon: return "neon";
    }
    panic("unreachable gf256::isaName");
}

bool
isaSupported(VecIsa isa)
{
    switch (isa) {
      case VecIsa::scalar:
        return true;
      case VecIsa::ssse3:
#if GPUECC_VEC_X86
        return detail::cpuHasSsse3();
#else
        return false;
#endif
      case VecIsa::avx2:
#if GPUECC_VEC_X86
        return detail::cpuHasAvx2();
#else
        return false;
#endif
      case VecIsa::neon:
#if GPUECC_VEC_NEON
        return true;
#else
        return false;
#endif
    }
    return false;
}

namespace {

int
initialBestIsa()
{
    // GPUECC_NO_SIMD forces the portable kernels, mirroring the
    // GPUECC_REFERENCE_CODEC convention for the codec backend.
    const char* env = std::getenv("GPUECC_NO_SIMD");
    const bool no_simd =
        env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
    if (no_simd)
        return static_cast<int>(VecIsa::scalar);
    if (isaSupported(VecIsa::avx2))
        return static_cast<int>(VecIsa::avx2);
    if (isaSupported(VecIsa::ssse3))
        return static_cast<int>(VecIsa::ssse3);
    if (isaSupported(VecIsa::neon))
        return static_cast<int>(VecIsa::neon);
    return static_cast<int>(VecIsa::scalar);
}

} // namespace

VecIsa
bestIsa()
{
    static std::atomic<int> cached{initialBestIsa()};
    return static_cast<VecIsa>(cached.load(std::memory_order_relaxed));
}

std::vector<VecIsa>
supportedIsas()
{
    std::vector<VecIsa> out{VecIsa::scalar};
    for (VecIsa isa : {VecIsa::ssse3, VecIsa::avx2, VecIsa::neon}) {
        if (isaSupported(isa))
            out.push_back(isa);
    }
    return out;
}

MulTables
mulTables(std::uint8_t c)
{
    MulTables t;
    for (int v = 0; v < 16; ++v) {
        t.lo[v] = mul(c, static_cast<std::uint8_t>(v));
        t.hi[v] = mul(c, static_cast<std::uint8_t>(v << 4));
    }
    return t;
}

void
mulConstBuf(VecIsa isa, const MulTables& t, const std::uint8_t* src,
            std::uint8_t* dst, std::size_t n)
{
    switch (isa) {
#if GPUECC_VEC_X86
      case VecIsa::ssse3:
        detail::mulConstBufSsse3(t, src, dst, n);
        return;
      case VecIsa::avx2:
        detail::mulConstBufAvx2(t, src, dst, n);
        return;
#endif
#if GPUECC_VEC_NEON
      case VecIsa::neon:
        detail::mulConstBufNeon(t, src, dst, n);
        return;
#endif
      default:
        detail::mulConstBufScalar(t, src, dst, 0, n);
        return;
    }
}

void
mulConstXorAccBuf(VecIsa isa, const MulTables& t,
                  const std::uint8_t* src, std::uint8_t* acc,
                  std::size_t n)
{
    switch (isa) {
#if GPUECC_VEC_X86
      case VecIsa::ssse3:
        detail::mulConstXorAccBufSsse3(t, src, acc, n);
        return;
      case VecIsa::avx2:
        detail::mulConstXorAccBufAvx2(t, src, acc, n);
        return;
#endif
#if GPUECC_VEC_NEON
      case VecIsa::neon:
        detail::mulConstXorAccBufNeon(t, src, acc, n);
        return;
#endif
      default:
        detail::mulConstXorAccBufScalar(t, src, acc, 0, n);
        return;
    }
}

void
divConstBuf(VecIsa isa, std::uint8_t c, const std::uint8_t* src,
            std::uint8_t* dst, std::size_t n)
{
    require(c != 0, "gf256::divConstBuf by zero");
    mulConstBuf(isa, mulTables(inv(c)), src, dst, n);
}

void
lut256Buf(VecIsa isa, const std::uint8_t* table,
          const std::uint8_t* src, std::uint8_t* dst, std::size_t n)
{
    switch (isa) {
#if GPUECC_VEC_X86
      case VecIsa::ssse3:
        detail::lut256BufSsse3(table, src, dst, n);
        return;
      case VecIsa::avx2:
        detail::lut256BufAvx2(table, src, dst, n);
        return;
#endif
#if GPUECC_VEC_NEON
      case VecIsa::neon:
        detail::lut256BufNeon(table, src, dst, n);
        return;
#endif
      default:
        detail::lut256BufScalar(table, src, dst, 0, n);
        return;
    }
}

const std::uint8_t*
invTable()
{
    static const std::array<std::uint8_t, 256> table = [] {
        std::array<std::uint8_t, 256> t{};
        t[0] = 0; // bulk convention; scalar inv(0) is a fatal error
        for (int a = 1; a < 256; ++a)
            t[a] = inv(static_cast<std::uint8_t>(a));
        return t;
    }();
    return table.data();
}

void
invBuf(VecIsa isa, const std::uint8_t* src, std::uint8_t* dst,
       std::size_t n)
{
    lut256Buf(isa, invTable(), src, dst, n);
}

void
xorAccBuf(const std::uint8_t* src, std::uint8_t* acc, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        std::uint64_t a, s;
        std::memcpy(&a, acc + i, 8);
        std::memcpy(&s, src + i, 8);
        a ^= s;
        std::memcpy(acc + i, &a, 8);
    }
    for (; i < n; ++i)
        acc[i] ^= src[i];
}

void
orAccBuf(const std::uint8_t* src, std::uint8_t* acc, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        std::uint64_t a, s;
        std::memcpy(&a, acc + i, 8);
        std::memcpy(&s, src + i, 8);
        a |= s;
        std::memcpy(acc + i, &a, 8);
    }
    for (; i < n; ++i)
        acc[i] |= src[i];
}

} // namespace gf256
} // namespace gpuecc
