/**
 * @file
 * Vectorized bulk arithmetic over GF(2^8).
 *
 * Multiplication by a fixed field element c is GF(2)-linear in the
 * eight input bits, so it factors through the operand's nibbles:
 *
 *     c * x  =  T_lo[x & 0xF]  ^  T_hi[x >> 4]
 *
 * where T_lo[v] = c * v and T_hi[v] = c * (v << 4). Both tables have
 * sixteen byte entries — exactly the operand shape of the byte
 * shuffle instructions (SSSE3 `pshufb`, AVX2 `vpshufb`, NEON `tbl`) —
 * so one constant multiply over a whole vector register costs two
 * shuffles and one XOR. This is the standard erasure-coding trick
 * (Plank et al., "Screaming Fast Galois Field Arithmetic Using Intel
 * SIMD Instructions") applied to the paper's 0x163 field.
 *
 * Every kernel takes an explicit VecIsa so tests can drive each
 * variant the host supports against the scalar tables; production
 * callers pick bestIsa() once at codec construction. The scalar
 * variant applies the very same nibble tables byte by byte, so all
 * variants are exact replicas of one another by construction — and
 * tests/test_gf256_simd.cpp proves it exhaustively anyway.
 *
 * The environment variable GPUECC_NO_SIMD (any value but "0" or
 * empty) forces bestIsa() to the scalar variant, mirroring how
 * GPUECC_REFERENCE_CODEC forces the reference codec backend.
 */

#ifndef GPUECC_GF256_GF256_VEC_HPP
#define GPUECC_GF256_GF256_VEC_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gpuecc {
namespace gf256 {

/** Instruction-set variants the bulk kernels are lowered to. */
enum class VecIsa
{
    scalar, //!< portable nibble-table loop (always available)
    ssse3,  //!< 16-byte pshufb kernels (x86)
    avx2,   //!< 32-byte vpshufb kernels (x86)
    neon    //!< 16-byte tbl kernels (aarch64)
};

/** Short name for reports and logs ("scalar", "ssse3", ...). */
const char* isaName(VecIsa isa);

/** True when `isa` is both compiled in and runnable on this host. */
bool isaSupported(VecIsa isa);

/**
 * The widest supported variant, honoring GPUECC_NO_SIMD. Computed on
 * first use and cached; later reads are a relaxed atomic load.
 */
VecIsa bestIsa();

/** Every host-runnable variant, scalar first (never empty). */
std::vector<VecIsa> supportedIsas();

/** Nibble-split shuffle tables for multiplication by one constant. */
struct MulTables
{
    alignas(16) std::uint8_t lo[16]; //!< c * v for v in [0, 16)
    alignas(16) std::uint8_t hi[16]; //!< c * (v << 4) for v in [0, 16)
};

/** Build the nibble tables of multiplication by c. */
MulTables mulTables(std::uint8_t c);

/** Scalar application of nibble tables: c * x in two loads. */
inline std::uint8_t
mulTab(const MulTables& t, std::uint8_t x)
{
    return static_cast<std::uint8_t>(t.lo[x & 0xF] ^ t.hi[x >> 4]);
}

/** dst[i] = c * src[i] for i in [0, n). dst may alias src. */
void mulConstBuf(VecIsa isa, const MulTables& t,
                 const std::uint8_t* src, std::uint8_t* dst,
                 std::size_t n);

/**
 * acc[i] ^= c * src[i] for i in [0, n) — the bulk syndrome
 * accumulation primitive: one call per (syndrome, symbol column).
 */
void mulConstXorAccBuf(VecIsa isa, const MulTables& t,
                       const std::uint8_t* src, std::uint8_t* acc,
                       std::size_t n);

/** dst[i] = src[i] / c (c nonzero). Lowered to a constant multiply
 *  by c's inverse. dst may alias src. */
void divConstBuf(VecIsa isa, std::uint8_t c, const std::uint8_t* src,
                 std::uint8_t* dst, std::size_t n);

/**
 * dst[i] = table[src[i]] for an arbitrary 256-entry byte table —
 * vectorized as sixteen 16-entry shuffles selected by the high
 * nibble (one `tbl4` pair on NEON). The workhorse behind batched
 * inversion; dst may alias src.
 */
void lut256Buf(VecIsa isa, const std::uint8_t* table,
               const std::uint8_t* src, std::uint8_t* dst,
               std::size_t n);

/**
 * Batched multiplicative inverse: dst[i] = src[i]^-1, with the
 * convention inv(0) = 0 (scalar gf256::inv rejects zero; a bulk
 * kernel cannot, so zero maps to zero and callers must mask).
 */
void invBuf(VecIsa isa, const std::uint8_t* src, std::uint8_t* dst,
            std::size_t n);

/** The 256-entry inverse table behind invBuf ([0] = 0). */
const std::uint8_t* invTable();

/** acc[i] ^= src[i]; word-at-a-time (the c == 1 multiply). */
void xorAccBuf(const std::uint8_t* src, std::uint8_t* acc,
               std::size_t n);

/** acc[i] |= src[i]; word-at-a-time (bulk nonzero-syndrome test). */
void orAccBuf(const std::uint8_t* src, std::uint8_t* acc,
              std::size_t n);

} // namespace gf256
} // namespace gpuecc

#endif // GPUECC_GF256_GF256_VEC_HPP
