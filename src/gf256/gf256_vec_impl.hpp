/**
 * @file
 * Internal declarations shared between the GF(2^8) vector-kernel
 * translation units. Not part of the public gf256 interface.
 *
 * Each ISA's kernels live in their own TU (gf256_vec_x86.cpp,
 * gf256_vec_neon.cpp) compiled with per-function target attributes,
 * so the library builds with baseline flags and selects at runtime.
 * The GPUECC_VEC_* macros say which TUs contribute kernels on this
 * architecture; gf256_vec.cpp dispatches only to those.
 */

#ifndef GPUECC_GF256_GF256_VEC_IMPL_HPP
#define GPUECC_GF256_GF256_VEC_IMPL_HPP

#include "gf256/gf256_vec.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define GPUECC_VEC_X86 1
#else
#define GPUECC_VEC_X86 0
#endif

#if defined(__aarch64__)
#define GPUECC_VEC_NEON 1
#else
#define GPUECC_VEC_NEON 0
#endif

namespace gpuecc {
namespace gf256 {
namespace detail {

/** Scalar tails shared by every vector kernel (range [i, n)). */
void mulConstBufScalar(const MulTables& t, const std::uint8_t* src,
                       std::uint8_t* dst, std::size_t i,
                       std::size_t n);
void mulConstXorAccBufScalar(const MulTables& t,
                             const std::uint8_t* src,
                             std::uint8_t* acc, std::size_t i,
                             std::size_t n);
void lut256BufScalar(const std::uint8_t* table,
                     const std::uint8_t* src, std::uint8_t* dst,
                     std::size_t i, std::size_t n);

#if GPUECC_VEC_X86
bool cpuHasSsse3();
bool cpuHasAvx2();
void mulConstBufSsse3(const MulTables& t, const std::uint8_t* src,
                      std::uint8_t* dst, std::size_t n);
void mulConstBufAvx2(const MulTables& t, const std::uint8_t* src,
                     std::uint8_t* dst, std::size_t n);
void mulConstXorAccBufSsse3(const MulTables& t,
                            const std::uint8_t* src,
                            std::uint8_t* acc, std::size_t n);
void mulConstXorAccBufAvx2(const MulTables& t,
                           const std::uint8_t* src, std::uint8_t* acc,
                           std::size_t n);
void lut256BufSsse3(const std::uint8_t* table, const std::uint8_t* src,
                    std::uint8_t* dst, std::size_t n);
void lut256BufAvx2(const std::uint8_t* table, const std::uint8_t* src,
                   std::uint8_t* dst, std::size_t n);
#endif

#if GPUECC_VEC_NEON
void mulConstBufNeon(const MulTables& t, const std::uint8_t* src,
                     std::uint8_t* dst, std::size_t n);
void mulConstXorAccBufNeon(const MulTables& t,
                           const std::uint8_t* src, std::uint8_t* acc,
                           std::size_t n);
void lut256BufNeon(const std::uint8_t* table, const std::uint8_t* src,
                   std::uint8_t* dst, std::size_t n);
#endif

} // namespace detail
} // namespace gf256
} // namespace gpuecc

#endif // GPUECC_GF256_GF256_VEC_IMPL_HPP
