#include "gf256/gf256.hpp"

#include "common/log.hpp"

namespace gpuecc {
namespace gf256 {

namespace {

/** Log/antilog tables built once at first use. */
struct Tables
{
    std::uint8_t exp[512]; // doubled to skip a mod-255 in mul
    int log[256];

    Tables()
    {
        unsigned x = 1;
        for (int i = 0; i < 255; ++i) {
            exp[i] = static_cast<std::uint8_t>(x);
            log[x] = i;
            x <<= 1;
            if (x & 0x100)
                x ^= primitivePoly;
        }
        require(x == 1, "0x163 is not primitive over GF(2^8)");
        for (int i = 255; i < 512; ++i)
            exp[i] = exp[i - 255];
        log[0] = -1;
    }
};

const Tables&
tables()
{
    static const Tables t;
    return t;
}

} // namespace

std::uint8_t
mul(std::uint8_t a, std::uint8_t b)
{
    if (a == 0 || b == 0)
        return 0;
    const Tables& t = tables();
    return t.exp[t.log[a] + t.log[b]];
}

std::uint8_t
div(std::uint8_t a, std::uint8_t b)
{
    require(b != 0, "gf256::div by zero");
    if (a == 0)
        return 0;
    const Tables& t = tables();
    return t.exp[t.log[a] - t.log[b] + 255];
}

std::uint8_t
inv(std::uint8_t a)
{
    require(a != 0, "gf256::inv of zero");
    const Tables& t = tables();
    return t.exp[255 - t.log[a]];
}

std::uint8_t
alphaPow(int e)
{
    int r = e % 255;
    if (r < 0)
        r += 255;
    return tables().exp[r];
}

int
dlog(std::uint8_t a)
{
    require(a != 0, "gf256::dlog of zero");
    return tables().log[a];
}

std::uint8_t
polyEval(const std::vector<std::uint8_t>& coeffs, std::uint8_t x)
{
    std::uint8_t acc = 0;
    for (auto it = coeffs.rbegin(); it != coeffs.rend(); ++it)
        acc = add(mul(acc, x), *it);
    return acc;
}

std::vector<std::uint8_t>
constantMulMatrix(std::uint8_t c)
{
    std::vector<std::uint8_t> cols(8);
    for (int b = 0; b < 8; ++b)
        cols[b] = mul(c, static_cast<std::uint8_t>(1u << b));
    return cols;
}

} // namespace gf256
} // namespace gpuecc
