/**
 * @file
 * Autonomous-vehicle safety assessment (Section 7.3 of the paper).
 *
 * Measures each ECC organization's per-event outcome profile, then
 * evaluates a GPU-accelerated vehicle against the ISO 26262 ASIL-D
 * 10-FIT silent-data-corruption budget and projects fleet-level
 * daily event counts for the US driving population.
 *
 *   ./build/examples/av_safety --samples 200000
 */

#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "ecc/registry.hpp"
#include "faultsim/evaluator.hpp"
#include "faultsim/weighted.hpp"
#include "reliability/system.hpp"

using namespace gpuecc;

int
main(int argc, char** argv)
{
    Cli cli;
    cli.addFlag("samples", "200000",
                "Monte Carlo samples for beat/entry patterns");
    cli.addFlag("fit-per-gbit", "12.51", "raw HBM2 soft error rate");
    cli.addFlag("gb", "40", "HBM2 capacity per vehicle GPU (GB)");
    cli.parse(argc, argv,
              "ISO 26262 safety assessment of GPU DRAM ECC options.");

    reliability::AvModel av;
    av.fit_per_gbit = cli.getDouble("fit-per-gbit");
    av.gb_per_vehicle = cli.getDouble("gb");

    std::printf("vehicle GPU memory: %.0f GB HBM2 at %.2f FIT/Gb "
                "(raw %.0f FIT)\n",
                av.gb_per_vehicle, av.fit_per_gbit,
                av.vehicleRawFit());
    std::printf("ISO 26262 ASIL-D SDC budget: %.0f FIT\n\n",
                av.iso26262_sdc_fit_limit);

    TextTable table({"scheme", "SDC FIT/vehicle", "ASIL-D?",
                     "fleet SDC/day", "fleet DUE/day"});
    const auto samples =
        static_cast<std::uint64_t>(cli.getInt("samples"));
    for (const auto& scheme : paperSchemes()) {
        Evaluator ev(*scheme);
        const WeightedOutcome w =
            weightedOutcome(ev.evaluateAll(samples));
        table.addRow({scheme->name(),
                      formatFixed(av.vehicleSdcFit(w), 3),
                      av.satisfiesIso26262(w) ? "yes" : "NO",
                      formatFixed(av.fleetSdcPerDay(w), 2),
                      formatFixed(av.fleetDuePerDay(w), 0)});
    }
    table.print();

    std::printf("\nfleet exposure model: 225.8M US drivers x 51 "
                "min/day = %.2e GPU-hours/day\n",
                av.fleet_hours_per_day);
    return 0;
}
