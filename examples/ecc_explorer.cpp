/**
 * @file
 * Interactive ECC design-space explorer.
 *
 * Evaluates any registered organization against any Table 1 error
 * pattern (exhaustively where possible, Monte Carlo otherwise) and
 * prints DCE/DUE/SDC rates with confidence intervals - the tool you
 * would use to extend the paper's Table 2 with new codes.
 *
 *   ./build/examples/ecc_explorer --scheme trio --samples 200000
 *   ./build/examples/ecc_explorer --scheme ssc-dsd+ --pattern entry
 */

#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "ecc/registry.hpp"
#include "faultsim/evaluator.hpp"
#include "faultsim/weighted.hpp"

using namespace gpuecc;

namespace {

ErrorPattern
patternFromName(const std::string& name)
{
    for (const PatternInfo& info : patternTable()) {
        if (info.label == name)
            return info.pattern;
    }
    if (name == "bit") return ErrorPattern::oneBit;
    if (name == "pin") return ErrorPattern::onePin;
    if (name == "byte") return ErrorPattern::oneByte;
    if (name == "2bit") return ErrorPattern::twoBits;
    if (name == "3bit") return ErrorPattern::threeBits;
    if (name == "beat") return ErrorPattern::oneBeat;
    if (name == "entry") return ErrorPattern::wholeEntry;
    fatal("unknown pattern '" + name +
          "' (use bit/pin/byte/2bit/3bit/beat/entry/all)");
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli;
    cli.addFlag("scheme", "trio",
                "scheme id (ni-secded, i-secded, duet, ni-sec2bec, "
                "i-sec2bec, trio, i-ssc, i-ssc-csc, ssc-dsd+, dsc, "
                "ssc-tsd)");
    cli.addFlag("pattern", "all",
                "error pattern: bit, pin, byte, 2bit, 3bit, beat, "
                "entry, or all");
    cli.addFlag("samples", "200000",
                "Monte Carlo samples for beat/entry patterns");
    cli.addFlag("seed", "0x5EED", "random seed");
    cli.parse(argc, argv,
              "Evaluate an ECC organization against the paper's "
              "error patterns.");

    const auto scheme = makeScheme(cli.getString("scheme"));
    const auto samples =
        static_cast<std::uint64_t>(cli.getInt("samples"));
    Evaluator ev(*scheme,
                 static_cast<std::uint64_t>(cli.getInt("seed")));

    std::printf("scheme: %s\n", scheme->name().c_str());
    std::printf("pin-error correction: %s\n\n",
                scheme->correctsPinErrors() ? "yes" : "no");

    TextTable table({"pattern", "trials", "mode", "DCE", "DUE", "SDC",
                     "SDC 95% CI"});
    std::map<ErrorPattern, OutcomeCounts> per_pattern;

    const std::string which = cli.getString("pattern");
    for (const PatternInfo& info : patternTable()) {
        if (which != "all" && patternFromName(which) != info.pattern)
            continue;
        const OutcomeCounts counts = ev.evaluate(info.pattern, samples);
        per_pattern[info.pattern] = counts;
        const Interval ci = counts.sdcInterval();
        table.addRow({info.label, std::to_string(counts.trials),
                      counts.exhaustive ? "exhaustive" : "sampled",
                      formatPercent(counts.dceRate(), 4),
                      formatPercent(counts.dueRate(), 4),
                      formatPercent(counts.sdcRate(), 4),
                      "[" + formatPercent(ci.lo, 4) + ", " +
                          formatPercent(ci.hi, 4) + "]"});
    }
    table.print();

    if (which == "all") {
        const WeightedOutcome w = weightedOutcome(per_pattern);
        std::printf("\nTable-1-weighted (a random single event):\n");
        std::printf("  corrected: %s\n",
                    formatPercent(w.correct, 4).c_str());
        std::printf("  detected:  %s\n",
                    formatPercent(w.detect, 4).c_str());
        std::printf("  SDC:       %s\n",
                    formatPercent(w.sdc, 6).c_str());
    }
    return 0;
}
