/**
 * @file
 * Interactive ECC design-space explorer.
 *
 * Evaluates any registered organization against any Table 1 error
 * pattern (exhaustively where possible, Monte Carlo otherwise) and
 * prints DCE/DUE/SDC rates with confidence intervals - the tool you
 * would use to extend the paper's Table 2 with new codes. Runs on
 * the campaign engine, so --threads scales it and --json/--csv emit
 * the standard campaign artifacts.
 *
 *   ./build/examples/ecc_explorer --scheme trio --samples 200000
 *   ./build/examples/ecc_explorer --scheme ssc-dsd+ --pattern entry
 *   ./build/examples/ecc_explorer --scheme duet,trio --threads 0
 */

#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "ecc/registry.hpp"
#include "faultsim/weighted.hpp"
#include "sim/campaign.hpp"
#include "sim/cli.hpp"

using namespace gpuecc;

namespace {

ErrorPattern
patternFromName(const std::string& name)
{
    for (const PatternInfo& info : patternTable()) {
        if (info.label == name)
            return info.pattern;
    }
    if (name == "bit") return ErrorPattern::oneBit;
    if (name == "pin") return ErrorPattern::onePin;
    if (name == "byte") return ErrorPattern::oneByte;
    if (name == "2bit") return ErrorPattern::twoBits;
    if (name == "3bit") return ErrorPattern::threeBits;
    if (name == "beat") return ErrorPattern::oneBeat;
    if (name == "entry") return ErrorPattern::wholeEntry;
    fatal("unknown pattern '" + name +
          "' (use bit/pin/byte/2bit/3bit/beat/entry/all)");
}

std::vector<std::string>
splitCommas(const std::string& text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? text.size() : comma;
        if (end > start)
            out.push_back(text.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli;
    cli.addFlag("scheme", "trio",
                "comma-separated scheme ids (ni-secded, i-secded, "
                "duet, ni-sec2bec, i-sec2bec, trio, i-ssc, i-ssc-csc, "
                "ssc-dsd+, dsc, ssc-tsd)");
    cli.addFlag("pattern", "all",
                "error pattern: bit, pin, byte, 2bit, 3bit, beat, "
                "entry, or all");
    sim::addCampaignFlags(cli);
    cli.parse(argc, argv,
              "Evaluate ECC organizations against the paper's "
              "error patterns.");

    sim::CampaignSpec spec = sim::campaignSpecFromCli(cli);
    spec.scheme_ids = splitCommas(cli.getString("scheme"));
    const std::string which = cli.getString("pattern");
    if (which != "all")
        spec.patterns = {patternFromName(which)};
    const sim::CampaignResult result = sim::CampaignRunner(spec).run();
    if (result.interrupted)
        return sim::finalizeCampaign(result, cli);

    for (const std::string& id : spec.scheme_ids) {
        if (!result.hasScheme(id))
            continue;
        const auto scheme = makeScheme(id);
        std::printf("scheme: %s\n", scheme->name().c_str());
        std::printf("pin-error correction: %s\n\n",
                    scheme->correctsPinErrors() ? "yes" : "no");

        TextTable table({"pattern", "trials", "mode", "DCE", "DUE",
                         "SDC", "SDC 95% CI"});
        for (const PatternInfo& info : patternTable()) {
            if (which != "all" &&
                patternFromName(which) != info.pattern)
                continue;
            const OutcomeCounts& counts =
                result.counts(id, info.pattern);
            const Interval ci = counts.sdcInterval();
            table.addRow({info.label, std::to_string(counts.trials),
                          counts.exhaustive ? "exhaustive" : "sampled",
                          formatPercent(counts.dceRate(), 4),
                          formatPercent(counts.dueRate(), 4),
                          formatPercent(counts.sdcRate(), 4),
                          "[" + formatPercent(ci.lo, 4) + ", " +
                              formatPercent(ci.hi, 4) + "]"});
        }
        table.print();

        if (which == "all") {
            const WeightedOutcome w =
                weightedOutcome(result.perPattern(id));
            std::printf("\nTable-1-weighted (a random single "
                        "event):\n");
            std::printf("  corrected: %s\n",
                        formatPercent(w.correct, 4).c_str());
            std::printf("  detected:  %s\n",
                        formatPercent(w.detect, 4).c_str());
            std::printf("  SDC:       %s\n",
                        formatPercent(w.sdc, 6).c_str());
        }
        std::printf("\n");
    }
    std::printf("%llu trials in %.2f s (%d threads)\n",
                static_cast<unsigned long long>(result.totalTrials()),
                result.seconds, spec.threads);
    return sim::finalizeCampaign(result, cli);
}
