/**
 * @file
 * Export the binary encoders and decoders as structural Verilog -
 * the artifacts a hardware team would hand to synthesis, matching
 * the paper's claim that DuetECC/TrioECC are drop-in replacements
 * for the existing SEC-DED machinery.
 *
 *   ./build/examples/export_rtl --outdir rtl
 */

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "codes/hsiao.hpp"
#include "codes/sec2bec.hpp"
#include "common/cli.hpp"
#include "common/log.hpp"
#include "ecc/registry.hpp"
#include "hwmodel/circuits.hpp"

using namespace gpuecc;
using namespace gpuecc::hw;

namespace {

void
writeFile(const std::filesystem::path& path, const std::string& text)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write " + path.string());
    out << text;
    std::printf("wrote %-34s (%zu bytes)\n", path.string().c_str(),
                text.size());
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli;
    cli.addFlag("outdir", "rtl", "output directory for .v files");
    cli.addFlag("eff", "true",
                "use the area-optimized (CSE) synthesis point");
    cli.parse(argc, argv, "Export gpuecc encoders/decoders as Verilog.");

    const std::filesystem::path outdir(cli.getString("outdir"));
    std::filesystem::create_directories(outdir);
    const bool share = cli.getBool("eff");

    // Encoders (full 32B entry: 256 data in, 32 check bits out).
    writeFile(outdir / "secded_encoder.v",
              buildEntryEncoder(*makeScheme("ni-secded"), share)
                  .toVerilog("secded_encoder"));
    writeFile(outdir / "sec2bec_encoder.v",
              buildEntryEncoder(*makeScheme("ni-sec2bec"), share)
                  .toVerilog("sec2bec_encoder"));

    // Decoders (288 received bits in, 256 corrected bits + due out).
    const Code72 hsiao(hsiao7264Matrix(), Code72::stride4Pairs());
    const Code72 trio(sec2becInterleavedMatrix(),
                      Code72::stride4Pairs());
    writeFile(outdir / "secded_decoder.v",
              buildBinaryDecoder(hsiao, false, false, false, share)
                  .toVerilog("secded_decoder"));
    writeFile(outdir / "duet_decoder.v",
              buildBinaryDecoder(hsiao, false, true, true, share)
                  .toVerilog("duet_decoder"));
    writeFile(outdir / "trio_decoder.v",
              buildBinaryDecoder(trio, true, true, true, share)
                  .toVerilog("trio_decoder"));

    std::printf("\nThe Reed-Solomon decoders use discrete-log ROM "
                "blocks that live outside the gate-level\nIR and are "
                "deliberately not exported.\n");
    return 0;
}
