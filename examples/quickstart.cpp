/**
 * @file
 * Quickstart: protect one 32B HBM2 memory entry with each of the
 * paper's ECC organizations and watch how they respond to a
 * byte error (the dominant severe soft-error pattern in GPU DRAM).
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "ecc/registry.hpp"
#include "interleave/swizzle.hpp"

using namespace gpuecc;

namespace {

const char*
statusName(EntryDecode::Status s)
{
    switch (s) {
      case EntryDecode::Status::clean: return "clean";
      case EntryDecode::Status::corrected: return "corrected (DCE)";
      case EntryDecode::Status::due: return "detected (DUE)";
    }
    return "?";
}

} // namespace

int
main()
{
    // 32B of user data: four 64-bit words.
    const EntryData data{0x0123456789ABCDEFull, 0xFEDCBA9876543210ull,
                         0xA5A5A5A5A5A5A5A5ull, 0x5A5A5A5A5A5A5A5Aull};

    std::printf("Protecting one 32B entry (+4B ECC) and injecting a "
                "full byte error\n(physical byte 5, all 8 bits "
                "flipped) under every organization:\n\n");
    std::printf("%-28s %-18s %s\n", "scheme", "outcome",
                "data intact?");
    std::printf("%s\n", std::string(60, '-').c_str());

    for (const auto& scheme : paperSchemes()) {
        // Encode to the 288-bit physical entry (4 beats x 72 pins).
        Bits288 entry = scheme->encode(data);

        // A mat-local failure: one aligned byte is corrupted.
        for (int t = 0; t < 8; ++t)
            entry.flip(8 * 5 + t);

        const EntryDecode decoded = scheme->decode(entry);
        const bool intact =
            decoded.status != EntryDecode::Status::due &&
            decoded.data == data;
        std::printf("%-28s %-18s %s\n", scheme->name().c_str(),
                    statusName(decoded.status),
                    decoded.status == EntryDecode::Status::due
                        ? "n/a (entry discarded)"
                        : (intact ? "yes" : "NO - SILENT CORRUPTION"));
    }

    std::printf("\nSingle-bit errors are corrected by every scheme; "
                "pin errors by every\nscheme except SSC-DSD+. Try "
                "examples/ecc_explorer for the full matrix.\n");
    return 0;
}
