/**
 * @file
 * End-to-end simulated neutron-beam campaign.
 *
 * Runs the DRAM microbenchmark on a simulated 32GB HBM2 GPU in the
 * beam, then applies the paper's post-processing pipeline:
 * intermittent (displacement-damage) filtering, event
 * reconstruction, and soft-error classification. Finishes with the
 * out-of-beam refresh-rate experiment and the normal retention fit.
 *
 *   ./build/examples/beam_campaign --runs 300 --seed 7
 */

#include <cstdio>

#include "beam/campaign.hpp"
#include "beam/classify.hpp"
#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "obs/manifest.hpp"
#include "obs/trace.hpp"
#include "sim/report.hpp"

using namespace gpuecc;
using namespace gpuecc::beam;

int
main(int argc, char** argv)
{
    Cli cli;
    cli.addFlag("runs", "300", "microbenchmark runs in the beam");
    cli.addFlag("seed", "0xBEA3", "random seed");
    cli.addFlag("json", "", "write a campaign summary to this file");
    cli.addFlag("trace", "",
                "write a Chrome trace-event JSON of the campaign "
                "phases to this file");
    cli.parse(argc, argv, "Simulate a neutron beam testing campaign.");

    const std::string trace_path = cli.getString("trace");
    if (!trace_path.empty())
        obs::startTrace(trace_path);

    CampaignConfig cfg;
    cfg.runs = static_cast<int>(cli.getInt("runs"));
    cfg.seed = static_cast<std::uint64_t>(cli.getInt("seed"));

    std::printf("== In the beam ==\n");
    Campaign campaign(cfg);
    {
        obs::TraceSpan span("in-beam", "beam");
        campaign.runInBeam();
    }
    std::printf("beam time: %.0f s, fluence: %.3e n/cm^2, "
                "log records: %zu\n",
                campaign.timeSeconds(), campaign.fluence(),
                campaign.log().size());

    std::printf("\n== Post-processing ==\n");
    const ClassificationResult result = [&] {
        obs::TraceSpan span("post-process", "beam");
        return classifyLog(campaign.log());
    }();
    std::printf("damaged (intermittent) entries filtered: %zu\n",
                result.damaged_entries.size());
    std::printf("soft-error events reconstructed: %llu\n\n",
                static_cast<unsigned long long>(result.numEvents()));

    const double n = static_cast<double>(result.numEvents());
    TextTable classes({"class", "events", "fraction"});
    const std::pair<SoftErrorEvent::Class, const char*> kinds[] = {
        {SoftErrorEvent::Class::sbse, "SBSE (single-bit single-entry)"},
        {SoftErrorEvent::Class::sbme, "SBME (single-bit multi-entry)"},
        {SoftErrorEvent::Class::mbse, "MBSE (multi-bit single-entry)"},
        {SoftErrorEvent::Class::mbme, "MBME (multi-bit multi-entry)"},
    };
    for (const auto& [cls, label] : kinds) {
        const auto it = result.class_counts.find(cls);
        const std::uint64_t c =
            it == result.class_counts.end() ? 0 : it->second;
        classes.addRow({label, std::to_string(c),
                        formatPercent(c / n, 2)});
    }
    classes.print();

    int multi = 0, aligned = 0;
    for (const auto& ev : result.events) {
        multi += ev.multi_bit;
        aligned += ev.byte_aligned;
    }
    std::printf("\nmulti-bit events: %s of all events; byte-aligned: "
                "%s of multi-bit\n",
                formatPercent(multi / n, 1).c_str(),
                formatPercent(multi ? static_cast<double>(aligned) /
                                          multi : 0.0, 1).c_str());

    std::printf("\n== Out of the beam: refresh-rate experiment ==\n");
    const std::vector<double> periods{8, 16, 24, 32, 40, 48};
    const auto sweep = [&] {
        obs::TraceSpan span("refresh-sweep", "beam");
        campaign.soak(1e11); // heavily damage the GPU first
        return campaign.refreshSweep(periods);
    }();
    std::vector<double> xs, ys;
    TextTable refresh({"refresh period (ms)", "weak cells"});
    for (const auto& [p, count] : sweep) {
        refresh.addRow({formatFixed(p, 0), std::to_string(count)});
        xs.push_back(p);
        ys.push_back(static_cast<double>(count));
    }
    refresh.print();

    const NormalCdfFit fit = fitNormalCdf(xs, ys);
    std::printf("\nnormal retention-time fit (paper Figure 3b): "
                "n=%.0f cells, mu=%.1f ms, sigma=%.1f ms\n",
                fit.n, fit.mu, fit.sigma);

    std::printf("\nannealing 3.5 h outside the beam...\n");
    const auto pre8 = campaign.visibleWeakCells(8.0);
    const auto pre48 = campaign.visibleWeakCells(48.0);
    {
        obs::TraceSpan span("anneal", "beam");
        campaign.annealOutsideBeam(3.5);
    }
    std::printf("weak cells @8ms: %llu -> %llu; @48ms: %llu -> %llu\n",
                static_cast<unsigned long long>(pre8),
                static_cast<unsigned long long>(
                    campaign.visibleWeakCells(8.0)),
                static_cast<unsigned long long>(pre48),
                static_cast<unsigned long long>(
                    campaign.visibleWeakCells(48.0)));

    const std::string path = cli.getString("json");
    if (!path.empty()) {
        sim::JsonWriter json;
        json.beginObject();
        json.kv("runs", static_cast<std::uint64_t>(cfg.runs));
        json.kv("seed", cfg.seed);
        json.kv("beam_seconds", campaign.timeSeconds());
        json.kv("fluence", campaign.fluence());
        json.kv("log_records",
                static_cast<std::uint64_t>(campaign.log().size()));
        json.kv("damaged_entries",
                static_cast<std::uint64_t>(
                    result.damaged_entries.size()));
        json.kv("events", result.numEvents());
        json.key("class_counts").beginObject();
        for (const auto& [cls, label] : kinds) {
            const auto it = result.class_counts.find(cls);
            json.kv(label, it == result.class_counts.end()
                               ? std::uint64_t{0}
                               : it->second);
        }
        json.endObject();
        json.key("retention_fit").beginObject();
        json.kv("n", fit.n);
        json.kv("mu_ms", fit.mu);
        json.kv("sigma_ms", fit.sigma);
        json.endObject();
        obs::RunManifest manifest;
        manifest.tool = obs::toolName();
        manifest.build = obs::buildInfo();
        manifest.threads = 1; // the beam simulation is sequential
        manifest.chaos = obs::chaosEnvText();
        manifest.samples = static_cast<std::uint64_t>(cfg.runs);
        manifest.seed = cfg.seed;
        manifest.traced = obs::traceEnabled();
        json.key("manifest");
        sim::writeRunManifest(json, manifest);
        json.endObject();
        if (Status s = sim::saveTextFile(path, json.str()); !s.ok()) {
            warn("beam_campaign: summary write failed: " +
                 s.toString());
            return 1;
        }
    }
    if (obs::traceEnabled()) {
        if (Status s = obs::stopTraceAndWrite(); !s.ok()) {
            warn("beam_campaign: trace write failed: " +
                 s.toString());
            return 1;
        }
        std::printf("wrote %s\n", trace_path.c_str());
    }
    return 0;
}
