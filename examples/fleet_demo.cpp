/**
 * @file
 * Fleet-scale campaign demo: a 1000-GPU beam fleet plan dispatched
 * to forked worker processes.
 *
 * Plans the paper's system-level projection for a fleet of
 * A100-class GPUs: every scheme is evaluated against all seven
 * Table 1 error patterns on the campaign engine in fleet mode
 * (--fleet-workers forked processes fed from a shared work-unit
 * queue), the per-pattern tallies are weighted into per-event
 * outcome probabilities, and the fleet's raw soft-error FIT
 * (12.51 FIT/Gb x 40GB x N GPUs) is split into the SDC and DUE FIT
 * each ECC organization would leave. The same plan is then re-run
 * in-process and the per-scheme FIT rates are demanded bit-identical
 * — the fleet dispatch changes who evaluates each shard, never what
 * is drawn.
 *
 *   ./build/examples/fleet_demo                      # 4 workers
 *   ./build/examples/fleet_demo --fleet-workers 16
 *   ./build/examples/fleet_demo --gpus 4000 --no-verify
 */

#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "ecc/registry.hpp"
#include "faultsim/weighted.hpp"
#include "reliability/fit.hpp"
#include "sim/campaign.hpp"
#include "sim/cli.hpp"

using namespace gpuecc;

namespace {

std::vector<std::string>
splitCommas(const std::string& text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? text.size() : comma;
        if (end > start)
            out.push_back(text.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

/** Per-scheme FIT projection for the whole fleet. */
struct FleetFit
{
    std::string scheme_id;
    WeightedOutcome outcome;
    double sdc_fit;
    double due_fit;
};

std::vector<FleetFit>
projectFleetFit(const sim::CampaignResult& result,
                const std::vector<std::string>& scheme_ids,
                double fleet_raw_fit)
{
    std::vector<FleetFit> out;
    for (const std::string& id : scheme_ids) {
        if (!result.hasScheme(id))
            continue;
        const WeightedOutcome w =
            weightedOutcome(result.perPattern(id));
        out.push_back({id, w,
                       reliability::sdcFit(fleet_raw_fit, w),
                       reliability::dueFit(fleet_raw_fit, w)});
    }
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli;
    cli.addFlag("scheme", "ni-secded,duet,trio,i-ssc,ssc-tsd",
                "comma-separated scheme ids to project FIT for");
    cli.addFlag("gpus", "1000", "GPUs in the simulated beam fleet");
    cli.addFlag("gb-per-gpu", "40",
                "HBM2 capacity per GPU in GB (A100 40GB)");
    cli.addFlag("fit-per-gbit", "12.51",
                "raw soft-error rate in FIT/Gb (paper Section 7.3)");
    cli.addFlag("no-verify", "false",
                "skip the in-process re-run and its bit-identity "
                "check against the fleet tallies");
    sim::addCampaignFlags(cli, "100000");
    cli.parse(argc, argv,
              "Dispatch a 1000-GPU beam fleet plan to forked worker "
              "processes and project per-scheme FIT rates.");

    sim::CampaignSpec spec = sim::campaignSpecFromCli(cli);
    spec.scheme_ids = splitCommas(cli.getString("scheme"));
    // All seven Table 1 patterns: the event weighting needs the full
    // row set, so the demo never narrows the pattern list.
    spec.patterns.clear();
    if (spec.fleet_workers == 0)
        spec.fleet_workers = 4; // the demo's point is fleet dispatch

    const double gpus = cli.getDouble("gpus");
    const double gb_per_gpu = cli.getDouble("gb-per-gpu");
    const double fit_per_gbit = cli.getDouble("fit-per-gbit");
    if (gpus <= 0 || gb_per_gpu <= 0 || fit_per_gbit <= 0)
        fatal("--gpus, --gb-per-gpu and --fit-per-gbit must be "
              "positive");
    const double gpu_raw_fit =
        reliability::rawMemoryFit(fit_per_gbit, gb_per_gpu * 8.0);
    const double fleet_raw_fit = gpu_raw_fit * gpus;

    std::printf("== Fleet plan ==\n"
                "%.0f GPUs x %.0f GB HBM2 @ %.2f FIT/Gb\n"
                "raw soft-error FIT: %.3e per GPU, %.3e fleet-wide\n"
                "dispatch: %d worker processes, %llu shard tasks per "
                "unit\n\n",
                gpus, gb_per_gpu, fit_per_gbit, gpu_raw_fit,
                fleet_raw_fit, spec.fleet_workers,
                static_cast<unsigned long long>(
                    spec.fleet_unit_shards));

    const sim::CampaignResult result =
        sim::CampaignRunner(spec).run();
    if (result.interrupted)
        return sim::finalizeCampaign(result, cli);

    const obs::FleetTelemetry& fleet = result.fleet;
    std::printf("== Fleet execution ==\n"
                "%d workers completed %llu units (%llu shards, %llu "
                "trials) in %.2f s; %llu requeued, %d workers lost\n",
                fleet.workers,
                static_cast<unsigned long long>(fleet.units),
                static_cast<unsigned long long>(
                    result.shards - result.resumed_shards),
                static_cast<unsigned long long>(result.totalTrials()),
                result.seconds,
                static_cast<unsigned long long>(fleet.requeues),
                fleet.workers_lost);
    for (const obs::FleetWorkerRecord& w : fleet.worker_records) {
        std::printf("  worker %d (pid %d): %llu units, %llu shards, "
                    "%.2f s busy%s\n",
                    w.worker, w.pid,
                    static_cast<unsigned long long>(w.units),
                    static_cast<unsigned long long>(w.shards),
                    w.busy_seconds, w.lost ? "  LOST" : "");
    }

    const std::vector<FleetFit> fits =
        projectFleetFit(result, spec.scheme_ids, fleet_raw_fit);
    std::printf("\n== Per-scheme fleet FIT projection ==\n");
    TextTable table({"scheme", "P(SDC|event)", "SDC FIT", "DUE FIT",
                     "fleet MTTF (h)"});
    for (const FleetFit& f : fits) {
        table.addRow({f.scheme_id, formatPercent(f.outcome.sdc, 6),
                      formatScientific(f.sdc_fit),
                      formatScientific(f.due_fit),
                      formatScientific(
                          reliability::mttfHours(f.sdc_fit))});
    }
    table.print();

    if (!cli.getBool("no-verify")) {
        std::printf("\n== Bit-identity check (in-process re-run) "
                    "==\n");
        sim::CampaignSpec single = spec;
        single.fleet_workers = 0;
        single.checkpoint_path.clear();
        single.resume = false;
        const sim::CampaignResult reference =
            sim::CampaignRunner(single).run();
        const std::vector<FleetFit> ref_fits =
            projectFleetFit(reference, spec.scheme_ids,
                            fleet_raw_fit);
        bool identical = fits.size() == ref_fits.size() &&
            result.cells.size() == reference.cells.size();
        for (std::size_t i = 0; identical && i < result.cells.size();
             ++i) {
            const OutcomeCounts& a = result.cells[i].counts;
            const OutcomeCounts& b = reference.cells[i].counts;
            identical = a.trials == b.trials && a.dce == b.dce &&
                a.due == b.due && a.sdc == b.sdc;
        }
        // The FIT doubles derive from identical integer tallies by
        // identical arithmetic, so exact equality is the contract.
        for (std::size_t i = 0; identical && i < fits.size(); ++i) {
            identical = fits[i].scheme_id == ref_fits[i].scheme_id &&
                fits[i].sdc_fit == ref_fits[i].sdc_fit &&
                fits[i].due_fit == ref_fits[i].due_fit;
        }
        std::printf("per-scheme FIT rates bit-identical to the "
                    "single-process run: %s\n",
                    identical ? "yes" : "NO");
        if (!identical) {
            std::printf("ERROR: fleet and in-process runs "
                        "diverged\n");
            return 1;
        }
    }
    return sim::finalizeCampaign(result, cli);
}
