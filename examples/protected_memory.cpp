/**
 * @file
 * End-to-end protected-memory demo: a software DRAM region protected
 * by two different organizations absorbs a barrage of beam-style
 * soft-error events, with scrub-on-read repairing what the code can
 * correct. Because the simulator keeps golden copies, it can count
 * true silent corruptions - the number no field study can observe.
 *
 *   ./build/examples/protected_memory --events 3000
 */

#include <cstdio>

#include "beam/events.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "ecc/protected_memory.hpp"
#include "ecc/registry.hpp"

using namespace gpuecc;
using namespace gpuecc::beam;

int
main(int argc, char** argv)
{
    Cli cli;
    cli.addFlag("events", "3000", "soft-error events to inject");
    cli.addFlag("entries", "65536", "region size in 32B entries");
    cli.addFlag("seed", "0x3E3", "random seed");
    cli.parse(argc, argv,
              "Protected-memory soak test under beam-style events.");

    const auto num_events =
        static_cast<std::uint64_t>(cli.getInt("events"));
    const auto num_entries =
        static_cast<std::uint64_t>(cli.getInt("entries"));
    const auto seed = static_cast<std::uint64_t>(cli.getInt("seed"));

    TextTable table({"scheme", "events absorbed", "corrected reads",
                     "DUE reads", "silent corruptions"});

    for (const char* id : {"ni-secded", "duet", "trio", "ssc-dsd+"}) {
        ProtectedMemory mem(makeScheme(id), num_entries);

        // Fill the region with recognizable data.
        Rng data_rng(seed);
        for (std::uint64_t i = 0; i < num_entries; i += 64) {
            mem.write(i, {data_rng.next64(), data_rng.next64(),
                          data_rng.next64(), data_rng.next64()});
        }

        // Hit it with beam-style events (data-domain masks placed
        // through the scheme's systematic layout), reading back the
        // affected entry after each event.
        EventGenerator events(EventConfig{}, hbm2::Geometry(1),
                              Rng(seed ^ 0xE7));
        Rng addr_rng(seed ^ 0xADD);
        std::uint64_t absorbed = 0;
        for (std::uint64_t e = 0; e < num_events; ++e) {
            const SoftErrorEvent ev = events.sample();
            for (const auto& [entry, mask] : ev.flips) {
                const std::uint64_t index = entry % num_entries;
                mem.injectStructural(index, mask);
                (void)mem.read(index);
                ++absorbed;
            }
        }

        const ProtectedMemory::Stats& s = mem.stats();
        table.addRow({makeScheme(id)->name(), std::to_string(absorbed),
                      std::to_string(s.corrected),
                      std::to_string(s.dues),
                      std::to_string(s.sdcs)});
    }
    table.print();
    std::printf("\n(\"silent corruptions\" is simulator-only "
                "knowledge: the read returned wrong data with no "
                "flag.)\n");
    return 0;
}
